#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/request_codec.hh"

namespace facsim::serve
{

int
connectUnix(const std::string &path, std::string *err)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *err = "socket path too long";
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *err = "cannot connect to '" + path +
               "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

ServeClient::~ServeClient()
{
    if (owns_ && rfd_ >= 0)
        ::close(rfd_);
}

bool
ServeClient::exchange(WireKind kind, const std::string &body,
                      ResponseEnvelope *resp, std::string *err)
{
    uint64_t id = nextId_++;
    if (!writeFrame(wfd_, encodeRequest(kind, id, body))) {
        *err = "write failed (daemon gone?)";
        return false;
    }
    std::string payload;
    FrameRead fr = readFrame(rfd_, &payload, err);
    if (fr == FrameRead::Eof) {
        *err = "daemon closed the connection";
        return false;
    }
    if (fr != FrameRead::Frame)
        return false;
    if (!decodeResponse(payload, resp, err))
        return false;
    if (resp->reqId != id) {
        *err = "response id mismatch";
        return false;
    }
    return true;
}

bool
ServeClient::ping(std::string *err)
{
    ResponseEnvelope resp;
    if (!exchange(WireKind::Ping, "", &resp, err))
        return false;
    if (resp.status != WireStatus::Ok) {
        *err = resp.body;
        return false;
    }
    return true;
}

bool
ServeClient::shutdown(std::string *err)
{
    ResponseEnvelope resp;
    if (!exchange(WireKind::Shutdown, "", &resp, err))
        return false;
    if (resp.status != WireStatus::Ok) {
        *err = resp.body;
        return false;
    }
    return true;
}

bool
ServeClient::stats(std::string *json, std::string *prom, std::string *err)
{
    ResponseEnvelope resp;
    if (!exchange(WireKind::Stats, "", &resp, err))
        return false;
    if (resp.status != WireStatus::Ok) {
        *err = resp.body;
        return false;
    }
    ser::TryReader r(resp.body.data(), resp.body.size());
    std::string j = r.str();
    std::string p = r.str();
    if (!r.ok() || !r.atEnd()) {
        *err = "malformed stats response";
        return false;
    }
    if (json)
        *json = std::move(j);
    if (prom)
        *prom = std::move(p);
    return true;
}

bool
ServeClient::profile(const ProfileRequest &req, ProfileResult *res,
                     bool *cached, std::string *err)
{
    ser::Writer w;
    encodeProfileRequest(w, req);
    ResponseEnvelope resp;
    if (!exchange(WireKind::Profile, w.data(), &resp, err))
        return false;
    if (resp.status != WireStatus::Ok) {
        *err = resp.body;
        return false;
    }
    ser::TryReader r(resp.body.data(), resp.body.size());
    if (!decodeProfileResult(r, res) || !r.atEnd()) {
        *err = "malformed profile result";
        return false;
    }
    if (cached)
        *cached = resp.cached;
    return true;
}

bool
ServeClient::timing(const TimingRequest &req, TimingResult *res,
                    bool *cached, std::string *err)
{
    ser::Writer w;
    encodeTimingRequest(w, req);
    ResponseEnvelope resp;
    if (!exchange(WireKind::Timing, w.data(), &resp, err))
        return false;
    if (resp.status != WireStatus::Ok) {
        *err = resp.body;
        return false;
    }
    ser::TryReader r(resp.body.data(), resp.body.size());
    if (!decodeTimingResult(r, res) || !r.atEnd()) {
        *err = "malformed timing result";
        return false;
    }
    if (cached)
        *cached = resp.cached;
    return true;
}

} // namespace facsim::serve
