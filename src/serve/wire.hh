/**
 * @file
 * Wire protocol of the experiment service: framing, envelopes and
 * framed file-descriptor I/O shared by the daemon (serve/server.hh),
 * the client (serve/client.hh) and the load generator.
 *
 * Framing: every message is one *frame* — a u32 little-endian payload
 * length followed by that many payload bytes. Lengths above
 * maxFrameBytes are rejected before any allocation, so a hostile
 * length prefix cannot balloon the daemon.
 *
 * Request payload layout: u32 magic "FSRV", u32 protocol version,
 * u8 request kind, u8 reserved (0), u64 request id, then the
 * kind-specific body (a sim/request_codec.hh encoding for
 * Profile/Timing; empty for Ping/Shutdown).
 *
 * Response payload layout: u32 magic, u32 version, u8 status, u8
 * cached flag, u64 request id (echoed), then the body — an encoded
 * result on Ok, a human-readable error message on Error. The cached
 * flag lives in the envelope, *outside* the body, so a cache hit can
 * replay the cold run's body byte-for-byte.
 *
 * All decoding is non-fatal (ser::TryReader): malformed input surfaces
 * as a false return with an error message, never an abort — the daemon
 * answers with a protocol error and carries on.
 */

#ifndef FACSIM_SERVE_WIRE_HH
#define FACSIM_SERVE_WIRE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace facsim::serve
{

/** "FSRV" read as a little-endian u32. */
constexpr uint32_t wireMagic = 0x56525346;

/**
 * Protocol version spoken by this build (covers the codec layouts).
 * History: v1 = initial protocol; v2 added WireKind::Stats (live
 * telemetry snapshots). A daemon answers a mismatched version with a
 * clean "unsupported protocol version N" error, never a hang.
 */
constexpr uint32_t wireVersion = 2;

/** Hard cap on one frame's payload; larger prefixes are hostile. */
constexpr uint32_t maxFrameBytes = 16u << 20;

/** Request kinds. */
enum class WireKind : uint8_t
{
    Ping = 0,     ///< liveness probe; empty body, empty Ok response
    Profile = 1,  ///< body: encoded ProfileRequest -> ProfileResult
    Timing = 2,   ///< body: encoded TimingRequest -> TimingResult
    Shutdown = 3, ///< ask the daemon to drain and exit; empty body
    Stats = 4,    ///< live stats snapshot; empty request body, response
                  ///< body: ser string JSON dump + ser string
                  ///< Prometheus exposition
};

/** Response status. */
enum class WireStatus : uint8_t
{
    Ok = 0,
    Error = 1,  ///< body is a diagnostic message
};

/**
 * A parsed request. `kind` is the raw byte so the server can echo a
 * clean "unknown request kind" error (with the request id) instead of
 * dropping the connection.
 */
struct RequestEnvelope
{
    uint8_t kind = 0;
    uint64_t reqId = 0;
    std::string body;
};

/** A parsed response. */
struct ResponseEnvelope
{
    WireStatus status = WireStatus::Ok;
    bool cached = false;
    uint64_t reqId = 0;
    std::string body;
};

/** Encode a request payload (no length prefix). */
std::string encodeRequest(WireKind kind, uint64_t req_id,
                          const std::string &body);

/**
 * Decode a request payload. False on bad magic/version or a truncated
 * header, with @p err set; @p env->reqId is still filled when the
 * header parsed that far. An out-of-range kind byte is NOT an error
 * here — the server validates it so it can reply per-request.
 */
bool decodeRequest(const std::string &payload, RequestEnvelope *env,
                   std::string *err);

/** Encode a response payload (no length prefix). */
std::string encodeResponse(const ResponseEnvelope &env);

/** Decode a response payload (client side). */
bool decodeResponse(const std::string &payload, ResponseEnvelope *env,
                    std::string *err);

/** Outcome of one framed read. */
enum class FrameRead
{
    Frame,  ///< *payload holds one complete frame payload
    Eof,    ///< orderly close before any byte of a frame
    Stop,   ///< *stop became true while waiting
    Error,  ///< protocol or I/O error; *err describes it
};

/**
 * Read one frame from @p fd. Waits in poll() rounds (~100 ms) so a
 * concurrently raised @p stop flag interrupts an idle wait; EOF in the
 * middle of a frame is an Error (truncated frame), EOF on a frame
 * boundary is Eof.
 */
FrameRead readFrame(int fd, std::string *payload, std::string *err,
                    const std::atomic<bool> *stop = nullptr);

/** Write one length-prefixed frame; false on I/O error (EPIPE, ...). */
bool writeFrame(int fd, const std::string &payload);

} // namespace facsim::serve

#endif // FACSIM_SERVE_WIRE_HH
