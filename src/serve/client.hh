/**
 * @file
 * Synchronous client for the experiment service: one connection, one
 * outstanding request at a time. The load generator and the tests use
 * it; sweep scripts can too (one client per thread — a ServeClient is
 * not thread-safe).
 */

#ifndef FACSIM_SERVE_CLIENT_HH
#define FACSIM_SERVE_CLIENT_HH

#include <string>

#include "serve/wire.hh"
#include "sim/experiment.hh"

namespace facsim::serve
{

/** Connect to a daemon's unix socket; -1 with *err on failure. */
int connectUnix(const std::string &path, std::string *err);

class ServeClient
{
  public:
    /** Wrap a connected socket (closed by the destructor). */
    explicit ServeClient(int fd) : rfd_(fd), wfd_(fd), owns_(true) {}
    /** Wrap a pipe pair (e.g. a --stdio daemon's stdin/stdout). */
    ServeClient(int rfd, int wfd) : rfd_(rfd), wfd_(wfd), owns_(false) {}
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Send one request and wait for its response envelope. False with
     * *err on transport or protocol failure; a WireStatus::Error
     * response is a *successful* exchange (inspect resp->status).
     */
    bool exchange(WireKind kind, const std::string &body,
                  ResponseEnvelope *resp, std::string *err);

    /** @{ @name Typed wrappers (false with *err on any failure) */
    bool ping(std::string *err);
    bool shutdown(std::string *err);
    /** Live stats snapshot: flat JSON dump + Prometheus exposition. */
    bool stats(std::string *json, std::string *prom, std::string *err);
    bool profile(const ProfileRequest &req, ProfileResult *res,
                 bool *cached, std::string *err);
    bool timing(const TimingRequest &req, TimingResult *res, bool *cached,
                std::string *err);
    /** @} */

  private:
    int rfd_, wfd_;
    bool owns_;
    uint64_t nextId_ = 1;
};

} // namespace facsim::serve

#endif // FACSIM_SERVE_CLIENT_HH
