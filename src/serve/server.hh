/**
 * @file
 * The experiment-serving daemon: a long-running process that owns
 * prebuilt workload images, accepts experiment requests over the
 * framed wire protocol (serve/wire.hh), schedules cache misses on the
 * Runner thread pool and answers repeats from a persistent result
 * cache (serve/cache.hh).
 *
 * Front ends: a unix-domain listening socket (`--socket`) and a stdio
 * mode (`--stdio`, frames on fd 0/1) for tests, CI and ssh-style
 * tunnelling. Both speak the identical protocol.
 *
 * Request path: each connection gets a reader thread. Ping, Shutdown,
 * protocol errors and *cache hits* are answered inline on that thread
 * — a hit costs one cache probe plus one frame write, microseconds,
 * which is what makes warm repeats orders of magnitude faster than
 * cold runs. Misses are queued; a single scheduler thread drains the
 * queue in batches through Runner::forEachIndex (`--jobs` workers),
 * encodes each result once, inserts it into the cache and replies.
 *
 * Graceful drain: SIGINT/SIGTERM (a lock-free flag every bounded wait
 * in the daemon re-checks) or a Shutdown
 * request stops the accept loop and new frame reads, lets queued and
 * in-flight experiments finish and their responses flush, persists the
 * cache (`--cache-file`), dumps the stats registry (`--stats-out`) and
 * exits 0.
 *
 * Live telemetry (docs/INTERNALS.md "Live telemetry"): a
 * WireKind::Stats request snapshots the registry mid-run (flat JSON +
 * Prometheus exposition) without touching the experiment queue;
 * `--stats-interval` flushes `--stats-out` periodically via
 * write-to-temp + rename; `--trace` records per-request span events
 * into Chrome trace-event JSON with one track per daemon thread.
 */

#ifndef FACSIM_SERVE_SERVER_HH
#define FACSIM_SERVE_SERVER_HH

#include <cstdint>
#include <string>

namespace facsim::serve
{

/** Daemon configuration (the `facsim_cli serve` flag set). */
struct ServerOptions
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;
    /** Serve one connection on stdin/stdout instead of a socket. */
    bool stdio = false;
    /** Runner worker threads for cache misses (0 = all hardware). */
    unsigned jobs = 1;
    /** Result-cache byte budget (0 = unbounded). */
    uint64_t cacheBytes = 256ull << 20;
    /** Cache persistence file; empty = in-memory only. */
    std::string cacheFile;
    /** Stats-registry dump on exit; JSON iff the path ends ".json". */
    std::string statsOut;
    /**
     * Flush --stats-out every N seconds while serving (0 = only on
     * drain). Each flush writes to a temp file and rename()s it into
     * place, so a scraper never reads a torn dump.
     */
    unsigned statsInterval = 0;
    /**
     * Per-request span trace (Chrome trace-event JSON): received /
     * enqueued / scheduled / run / replied events per request, on
     * per-thread tracks. Empty = disabled.
     */
    std::string tracePath;
};

/**
 * Run the daemon until drain; returns the process exit code (0 on a
 * graceful drain). Installs SIGINT/SIGTERM handlers for its lifetime.
 */
int serveMain(const ServerOptions &opts);

} // namespace facsim::serve

#endif // FACSIM_SERVE_SERVER_HH
