/**
 * @file
 * Persistent result cache of the experiment service.
 *
 * Key: the request kind, configFingerprint() of the timing
 * configuration (0 for profile requests, whose whole identity lives in
 * the request hash), workloadFingerprint() of the workload identity,
 * and an FNV-1a hash of the canonical encoded request body. Two
 * requests collide exactly when the codec encodes them identically —
 * which is the definition of "the same experiment".
 *
 * Value: the cold run's encoded result bytes, stored verbatim. A hit
 * replays them untouched, so warm responses are byte-for-byte
 * identical to the cold response (the cached marker travels in the
 * response envelope, outside the body).
 *
 * Eviction: LRU under a byte budget (payload bytes; the fixed per-key
 * overhead is ignored). Thread-safe; every operation takes one mutex.
 *
 * Persistence: save() writes a "FACSIMRC" container (format version,
 * codec version, entry count, entries in LRU order oldest-first, FNV-1a
 * trailer); load() restores it. A missing, corrupt, stale-version or
 * budget-overflowing file never kills the daemon — load() warns and
 * starts cold, because the cache is an accelerator, not a database.
 */

#ifndef FACSIM_SERVE_CACHE_HH
#define FACSIM_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/stats.hh"

namespace facsim::serve
{

/** Identity of one cached experiment. */
struct CacheKey
{
    uint8_t kind = 0;        ///< WireKind of the request
    uint64_t configFp = 0;   ///< configFingerprint() (timing; 0 profile)
    uint64_t workloadFp = 0; ///< workloadFingerprint()
    uint64_t requestFp = 0;  ///< FNV-1a of the encoded request body

    bool operator==(const CacheKey &o) const = default;
};

struct CacheKeyHash
{
    size_t operator()(const CacheKey &k) const;
};

/** LRU + byte-budget result cache with disk persistence. */
class ResultCache
{
  public:
    /** @param byte_budget payload-byte cap (0 = unbounded). */
    explicit ResultCache(uint64_t byte_budget) : budget_(byte_budget) {}

    /**
     * Probe for @p key; on hit copy the payload into @p payload, mark
     * the entry most-recently-used and count a hit. Counts a miss
     * otherwise.
     */
    bool lookup(const CacheKey &key, std::string *payload);

    /**
     * Insert (or refresh) @p key -> @p payload, then evict
     * least-recently-used entries until the budget holds. A payload
     * larger than the whole budget is not cached at all.
     */
    void insert(const CacheKey &key, const std::string &payload);

    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t evictions() const;
    uint64_t bytes() const;
    uint64_t entries() const;

    /** Persist every entry to @p path; warn + false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Load a previously saved cache. Any defect — unreadable file, bad
     * magic/checksum, stale cache or codec version, truncated entries —
     * warns and leaves the cache empty (returns false). A missing file
     * is silent: a first run is not an error.
     */
    bool load(const std::string &path);

    /**
     * Register hit/miss/eviction/occupancy stats under @p g
     * (conventionally "cache"). Values are read at dump time; the
     * cache must outlive the dump.
     */
    void registerStats(obs::Group &g);

  private:
    struct Entry
    {
        CacheKey key;
        std::string payload;
    };

    void evictLocked();

    mutable std::mutex mu_;
    uint64_t budget_;
    uint64_t bytes_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    /** Most-recently-used at the front. */
    std::list<Entry> lru_;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index_;
};

} // namespace facsim::serve

#endif // FACSIM_SERVE_CACHE_HH
