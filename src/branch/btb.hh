/**
 * @file
 * Branch target buffer per the paper's baseline model (Table 5): 1024-entry
 * direct-mapped, 2-bit saturating counters, taken-predicted branches redirect
 * fetch to the stored target, 2-cycle misprediction penalty (imposed by the
 * pipeline).
 */

#ifndef FACSIM_BRANCH_BTB_HH
#define FACSIM_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

#include "util/serialize.hh"

namespace facsim
{

/** Result of a BTB lookup. */
struct BtbPrediction
{
    bool hit = false;       ///< PC matched a BTB entry
    bool taken = false;     ///< counter predicts taken
    uint32_t target = 0;    ///< predicted target when taken
};

/** Direct-mapped BTB with 2-bit saturating counters. */
class Btb
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit Btb(unsigned entries = 1024);

    /** Look up the branch at @p pc. */
    BtbPrediction predict(uint32_t pc) const;

    /**
     * Train with the resolved outcome.
     *
     * @param pc branch address.
     * @param taken actual direction.
     * @param target actual target (stored when taken).
     */
    void update(uint32_t pc, bool taken, uint32_t target);

    /**
     * Functional-warming train: identical table effect to update()
     * (update() keeps no counters of its own, so this is an alias kept
     * for interface symmetry with Cache::warm/Tlb::warm).
     */
    void warm(uint32_t pc, bool taken, uint32_t target)
    {
        update(pc, taken, target);
    }

    /** Invalidate all entries and reset counters. */
    void reset();

    /** Serialize table contents and statistics. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (table size must match). */
    void loadState(ser::Reader &r);

    /** @{ @name Statistics (direction+target correctness) */
    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }
    /** Called by the pipeline when a prediction proves wrong. */
    void noteMispredict() { ++mispredicts_; }
    /** @} */

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint32_t target = 0;
        uint8_t counter = 1;  ///< weakly not-taken initial state
        bool valid = false;
    };

    uint32_t indexOf(uint32_t pc) const { return (pc >> 2) & (size - 1); }

    unsigned size;
    std::vector<Entry> table;
    mutable uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace facsim

#endif // FACSIM_BRANCH_BTB_HH
