#include "branch/btb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Btb::Btb(unsigned entries)
    : size(entries), table(entries)
{
    FACSIM_ASSERT(isPow2(entries), "BTB size must be a power of two");
}

BtbPrediction
Btb::predict(uint32_t pc) const
{
    ++lookups_;
    const Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc)
        return {false, false, 0};
    return {true, e.counter >= 2, e.target};
}

void
Btb::update(uint32_t pc, bool taken, uint32_t target)
{
    Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc) {
        // Allocate on first encounter; bias toward the observed outcome.
        e.valid = true;
        e.tag = pc;
        e.target = target;
        e.counter = taken ? 2 : 1;
        return;
    }
    if (taken) {
        if (e.counter < 3)
            ++e.counter;
        e.target = target;
    } else if (e.counter > 0) {
        --e.counter;
    }
}

void
Btb::reset()
{
    for (Entry &e : table)
        e = Entry{};
    lookups_ = 0;
    mispredicts_ = 0;
}

void
Btb::saveState(ser::Writer &w) const
{
    w.u64(table.size());
    for (const Entry &e : table) {
        w.u32(e.tag);
        w.u32(e.target);
        w.u8(e.counter);
        w.b(e.valid);
    }
    w.u64(lookups_);
    w.u64(mispredicts_);
}

void
Btb::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == table.size(),
                  "checkpoint BTB has %llu entries, this config has %zu",
                  static_cast<unsigned long long>(n), table.size());
    for (Entry &e : table) {
        e.tag = r.u32();
        e.target = r.u32();
        e.counter = r.u8();
        e.valid = r.b();
    }
    lookups_ = r.u64();
    mispredicts_ = r.u64();
}

} // namespace facsim
