#include "asm/builder.hh"

#include "util/logging.hh"

namespace facsim
{

void
AsmBuilder::r3(Op op, uint8_t rd, uint8_t rs, uint8_t rt)
{
    FACSIM_ASSERT(rd < 32 && rs < 32 && rt < 32, "bad register");
    p.append(Inst{.op = op, .rd = rd, .rs = rs, .rt = rt});
}

void
AsmBuilder::i3(Op op, uint8_t rt, uint8_t rs, int32_t imm)
{
    FACSIM_ASSERT(imm >= 0 && imm <= 0xffff,
                  "logical immediate %d out of range", imm);
    p.append(Inst{.op = op, .rs = rs, .rt = rt, .imm = imm});
}

void
AsmBuilder::addi(uint8_t rt, uint8_t rs, int32_t imm)
{
    FACSIM_ASSERT(imm >= -32768 && imm <= 32767,
                  "addi immediate %d out of range", imm);
    p.append(Inst{.op = Op::ADDI, .rs = rs, .rt = rt, .imm = imm});
}

void
AsmBuilder::lui(uint8_t rt, int32_t imm16)
{
    FACSIM_ASSERT(imm16 >= 0 && imm16 <= 0xffff, "lui immediate range");
    p.append(Inst{.op = Op::LUI, .rt = rt, .imm = imm16});
}

void
AsmBuilder::sh(Op op, uint8_t rd, uint8_t rs, int32_t shamt)
{
    FACSIM_ASSERT(shamt >= 0 && shamt < 32, "shift amount range");
    p.append(Inst{.op = op, .rd = rd, .rs = rs, .imm = shamt});
}

void
AsmBuilder::li(uint8_t rt, int32_t value)
{
    if (value >= -32768 && value <= 32767) {
        addi(rt, reg::zero, value);
    } else {
        uint32_t u = static_cast<uint32_t>(value);
        lui(rt, static_cast<int32_t>(u >> 16));
        if (u & 0xffffu)
            ori(rt, rt, static_cast<int32_t>(u & 0xffffu));
    }
}

void
AsmBuilder::la(uint8_t rt, SymId sym, int32_t addend)
{
    uint32_t hi = p.append(Inst{.op = Op::LUI, .rt = rt, .imm = 0});
    p.addFixup({Fixup::Kind::AbsHi, hi, sym, addend});
    uint32_t lo = p.append(Inst{.op = Op::ORI, .rs = rt, .rt = rt,
                                .imm = 0});
    p.addFixup({Fixup::Kind::AbsLo, lo, sym, addend});
}

void
AsmBuilder::laGp(uint8_t rt, SymId sym, int32_t addend)
{
    uint32_t i = p.append(Inst{.op = Op::ADDI, .rs = reg::gp, .rt = rt,
                               .imm = 0});
    p.addFixup({Fixup::Kind::GpRel, i, sym, addend});
}

void
AsmBuilder::memC(Op op, uint8_t rt, int32_t off, uint8_t base)
{
    FACSIM_ASSERT(isMem(op), "memC on non-memory op");
    FACSIM_ASSERT(off >= -32768 && off <= 32767,
                  "memory offset %d out of range", off);
    p.append(Inst{.op = op, .amode = AMode::RegConst, .rs = base, .rt = rt,
                  .imm = off});
}

void
AsmBuilder::memX(Op op, uint8_t rt, uint8_t base, uint8_t idx)
{
    p.append(Inst{.op = op, .amode = AMode::RegReg, .rd = idx, .rs = base,
                  .rt = rt});
}

void
AsmBuilder::memP(Op op, uint8_t rt, uint8_t base, int32_t stride)
{
    FACSIM_ASSERT(stride >= -32768 && stride <= 32767,
                  "post-increment stride %d out of range", stride);
    FACSIM_ASSERT(base != reg::zero, "post-increment of r0");
    p.append(Inst{.op = op, .amode = AMode::PostInc, .rs = base, .rt = rt,
                  .imm = stride});
}

void
AsmBuilder::memGp(Op op, uint8_t rt, SymId sym, int32_t addend)
{
    uint32_t i = p.append(Inst{.op = op, .amode = AMode::RegConst,
                               .rs = reg::gp, .rt = rt, .imm = 0});
    p.addFixup({Fixup::Kind::GpRel, i, sym, addend});
}

void
AsmBuilder::lwGp(uint8_t rt, SymId sym, int32_t addend)
{
    memGp(Op::LW, rt, sym, addend);
}

void
AsmBuilder::swGp(uint8_t rt, SymId sym, int32_t addend)
{
    memGp(Op::SW, rt, sym, addend);
}

void
AsmBuilder::ldc1Gp(uint8_t ft, SymId sym, int32_t addend)
{
    memGp(Op::LDC1, ft, sym, addend);
}

void
AsmBuilder::sdc1Gp(uint8_t ft, SymId sym, int32_t addend)
{
    memGp(Op::SDC1, ft, sym, addend);
}

void
AsmBuilder::br2(Op op, uint8_t rs, uint8_t rt, LabelId l)
{
    uint32_t i = p.append(Inst{.op = op, .rs = rs, .rt = rt, .imm = 0});
    p.addFixup({Fixup::Kind::Branch, i, l, 0});
}

void
AsmBuilder::j(LabelId l)
{
    uint32_t i = p.append(Inst{.op = Op::J});
    p.addFixup({Fixup::Kind::Jump, i, l, 0});
}

void
AsmBuilder::jal(LabelId l)
{
    uint32_t i = p.append(Inst{.op = Op::JAL});
    p.addFixup({Fixup::Kind::Jump, i, l, 0});
}

void
AsmBuilder::jr(uint8_t rs)
{
    p.append(Inst{.op = Op::JR, .rs = rs});
}

void
AsmBuilder::jalr(uint8_t rd, uint8_t rs)
{
    p.append(Inst{.op = Op::JALR, .rd = rd, .rs = rs});
}

void
AsmBuilder::cmp(Op op, uint8_t fs, uint8_t ft)
{
    p.append(Inst{.op = op, .rs = fs, .rt = ft});
}

void
AsmBuilder::mtc1(uint8_t fd, uint8_t rt)
{
    p.append(Inst{.op = Op::MTC1, .rd = fd, .rt = rt});
}

void
AsmBuilder::mfc1(uint8_t rd, uint8_t fs)
{
    p.append(Inst{.op = Op::MFC1, .rd = rd, .rs = fs});
}

SymId
AsmBuilder::global(const std::string &name, uint32_t size, uint32_t align,
                   bool small_data)
{
    return p.addSym(DataSym{.name = name, .size = size, .align = align,
                            .smallData = small_data});
}

SymId
AsmBuilder::globalInit(const std::string &name, std::vector<uint8_t> init,
                       uint32_t align, bool small_data)
{
    uint32_t size = static_cast<uint32_t>(init.size());
    return p.addSym(DataSym{.name = name, .size = size, .align = align,
                            .smallData = small_data,
                            .init = std::move(init)});
}

// Thin one-line forwarders kept out of line for header
// readability (the 79-column rule).

void
AsmBuilder::andi(uint8_t rt, uint8_t rs, int32_t imm)
{
    i3(Op::ANDI, rt, rs, imm);
}

void
AsmBuilder::xori(uint8_t rt, uint8_t rs, int32_t imm)
{
    i3(Op::XORI, rt, rs, imm);
}

void
AsmBuilder::slti(uint8_t rt, uint8_t rs, int32_t imm)
{
    i3(Op::SLTI, rt, rs, imm);
}

void
AsmBuilder::sltiu(uint8_t rt, uint8_t rs, int32_t imm)
{
    i3(Op::SLTIU, rt, rs, imm);
}

void
AsmBuilder::sll(uint8_t rd, uint8_t rs, int32_t shamt)
{
    sh(Op::SLL, rd, rs, shamt);
}

void
AsmBuilder::srl(uint8_t rd, uint8_t rs, int32_t shamt)
{
    sh(Op::SRL, rd, rs, shamt);
}

void
AsmBuilder::sra(uint8_t rd, uint8_t rs, int32_t shamt)
{
    sh(Op::SRA, rd, rs, shamt);
}

void
AsmBuilder::lb(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::LB, rt, off, base);
}

void
AsmBuilder::lbu(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::LBU, rt, off, base);
}

void
AsmBuilder::lh(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::LH, rt, off, base);
}

void
AsmBuilder::lhu(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::LHU, rt, off, base);
}

void
AsmBuilder::lw(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::LW, rt, off, base);
}

void
AsmBuilder::sb(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::SB, rt, off, base);
}

void
AsmBuilder::sh_(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::SH, rt, off, base);
}

void
AsmBuilder::sw(uint8_t rt, int32_t off, uint8_t base)
{
    memC(Op::SW, rt, off, base);
}

void
AsmBuilder::lwc1(uint8_t ft, int32_t off, uint8_t base)
{
    memC(Op::LWC1, ft, off, base);
}

void
AsmBuilder::ldc1(uint8_t ft, int32_t off, uint8_t base)
{
    memC(Op::LDC1, ft, off, base);
}

void
AsmBuilder::swc1(uint8_t ft, int32_t off, uint8_t base)
{
    memC(Op::SWC1, ft, off, base);
}

void
AsmBuilder::sdc1(uint8_t ft, int32_t off, uint8_t base)
{
    memC(Op::SDC1, ft, off, base);
}

void
AsmBuilder::lbRR(uint8_t rt, uint8_t base, uint8_t idx)
{
    memX(Op::LB, rt, base, idx);
}

void
AsmBuilder::lbuRR(uint8_t rt, uint8_t base, uint8_t idx)
{
    memX(Op::LBU, rt, base, idx);
}

void
AsmBuilder::lhRR(uint8_t rt, uint8_t base, uint8_t idx)
{
    memX(Op::LH, rt, base, idx);
}

void
AsmBuilder::lwRR(uint8_t rt, uint8_t base, uint8_t idx)
{
    memX(Op::LW, rt, base, idx);
}

void
AsmBuilder::sbRR(uint8_t rt, uint8_t base, uint8_t idx)
{
    memX(Op::SB, rt, base, idx);
}

void
AsmBuilder::swRR(uint8_t rt, uint8_t base, uint8_t idx)
{
    memX(Op::SW, rt, base, idx);
}

void
AsmBuilder::lwc1RR(uint8_t ft, uint8_t base, uint8_t idx)
{
    memX(Op::LWC1, ft, base, idx);
}

void
AsmBuilder::ldc1RR(uint8_t ft, uint8_t base, uint8_t idx)
{
    memX(Op::LDC1, ft, base, idx);
}

void
AsmBuilder::swc1RR(uint8_t ft, uint8_t base, uint8_t idx)
{
    memX(Op::SWC1, ft, base, idx);
}

void
AsmBuilder::sdc1RR(uint8_t ft, uint8_t base, uint8_t idx)
{
    memX(Op::SDC1, ft, base, idx);
}

void
AsmBuilder::lbPost(uint8_t rt, uint8_t base, int32_t stride)
{
    memP(Op::LB, rt, base, stride);
}

void
AsmBuilder::lbuPost(uint8_t rt, uint8_t base, int32_t stride)
{
    memP(Op::LBU, rt, base, stride);
}

void
AsmBuilder::lwPost(uint8_t rt, uint8_t base, int32_t stride)
{
    memP(Op::LW, rt, base, stride);
}

void
AsmBuilder::sbPost(uint8_t rt, uint8_t base, int32_t stride)
{
    memP(Op::SB, rt, base, stride);
}

void
AsmBuilder::swPost(uint8_t rt, uint8_t base, int32_t stride)
{
    memP(Op::SW, rt, base, stride);
}

void
AsmBuilder::lwc1Post(uint8_t ft, uint8_t base, int32_t stride)
{
    memP(Op::LWC1, ft, base, stride);
}

void
AsmBuilder::ldc1Post(uint8_t ft, uint8_t base, int32_t stride)
{
    memP(Op::LDC1, ft, base, stride);
}

void
AsmBuilder::swc1Post(uint8_t ft, uint8_t base, int32_t stride)
{
    memP(Op::SWC1, ft, base, stride);
}

void
AsmBuilder::sdc1Post(uint8_t ft, uint8_t base, int32_t stride)
{
    memP(Op::SDC1, ft, base, stride);
}

void
AsmBuilder::addD(uint8_t fd, uint8_t fs, uint8_t ft)
{
    r3(Op::ADD_D, fd, fs, ft);
}

void
AsmBuilder::subD(uint8_t fd, uint8_t fs, uint8_t ft)
{
    r3(Op::SUB_D, fd, fs, ft);
}

void
AsmBuilder::mulD(uint8_t fd, uint8_t fs, uint8_t ft)
{
    r3(Op::MUL_D, fd, fs, ft);
}

void
AsmBuilder::divD(uint8_t fd, uint8_t fs, uint8_t ft)
{
    r3(Op::DIV_D, fd, fs, ft);
}

} // namespace facsim
