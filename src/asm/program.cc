#include "asm/program.hh"

#include "isa/encoding.hh"
#include "util/logging.hh"

namespace facsim
{

uint32_t
Program::append(const Inst &inst)
{
    code_.push_back(inst);
    return static_cast<uint32_t>(code_.size() - 1);
}

LabelId
Program::newLabel()
{
    labelIndex_.push_back(-1);
    return static_cast<LabelId>(labelIndex_.size() - 1);
}

void
Program::bind(LabelId label)
{
    FACSIM_ASSERT(label < labelIndex_.size(), "unknown label");
    FACSIM_ASSERT(labelIndex_[label] < 0, "label bound twice");
    labelIndex_[label] = static_cast<int64_t>(code_.size());
}

SymId
Program::addSym(DataSym sym)
{
    syms_.push_back(std::move(sym));
    return static_cast<SymId>(syms_.size() - 1);
}

void
Program::addFixup(Fixup f)
{
    fixups_.push_back(f);
}

uint32_t
Program::labelIndex(LabelId label) const
{
    FACSIM_ASSERT(label < labelIndex_.size(), "unknown label");
    int64_t idx = labelIndex_[label];
    FACSIM_ASSERT(idx >= 0, "label %u never bound", label);
    return static_cast<uint32_t>(idx);
}

void
Program::reencode()
{
    words_.clear();
    words_.reserve(code_.size());
    for (const Inst &in : code_)
        words_.push_back(encode(in));
}

} // namespace facsim
