/**
 * @file
 * In-memory representation of an assembled program: decoded instructions,
 * the matching encoded text image, labels and unresolved fixups. Data
 * symbols are declared here and assigned addresses later by the linker
 * (link/linker.hh), which also patches the fixups.
 */

#ifndef FACSIM_ASM_PROGRAM_HH
#define FACSIM_ASM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace facsim
{

/** Identifier for a code label. */
using LabelId = uint32_t;
/** Identifier for a data symbol. */
using SymId = uint32_t;

/**
 * A global data object awaiting an address from the linker.
 *
 * `smallData` objects are candidates for the gp-addressed global region
 * ("global pointer addressing", paper Section 2.1); others live in the
 * general data segment and are reached via la (lui/ori).
 */
struct DataSym
{
    std::string name;
    uint32_t size = 0;
    uint32_t align = 4;
    bool smallData = false;
    std::vector<uint8_t> init;  ///< initial bytes; zero-filled if shorter
    uint32_t addr = 0;          ///< assigned by the linker
};

/** A patch the linker must apply once labels/symbols have addresses. */
struct Fixup
{
    enum class Kind
    {
        Branch,  ///< imm <- label displacement in words from PC+4
        Jump,    ///< imm <- absolute word address of label
        AbsHi,   ///< imm <- high 16 bits of symbol address (+addend)
        AbsLo,   ///< imm <- low 16 bits of symbol address (+addend)
        GpRel,   ///< imm <- symbol address (+addend) - gp value
    };

    Kind kind;
    uint32_t instIndex;  ///< which instruction to patch
    uint32_t target;     ///< LabelId (Branch/Jump) or SymId (others)
    int32_t addend = 0;
};

/**
 * An assembled (and possibly linked) program. The decoded form `code` is
 * what the CPUs execute; `words` is the equivalent encoded image kept for
 * encode/decode cross-checking and for loading into simulated memory.
 */
class Program
{
  public:
    /** Base virtual address of the text segment. */
    static constexpr uint32_t textBase = 0x00400000;

    /** Append an instruction; returns its index. */
    uint32_t append(const Inst &inst);

    /** Create a fresh unbound label. */
    LabelId newLabel();

    /** Bind @p label to the next appended instruction. */
    void bind(LabelId label);

    /** Declare a data symbol (address assigned at link time). */
    SymId addSym(DataSym sym);

    /** Record a fixup for the linker. */
    void addFixup(Fixup f);

    /** Instruction at @p index (mutable, for link-time patching). */
    Inst &inst(uint32_t index) { return code_[index]; }
    const Inst &inst(uint32_t index) const { return code_[index]; }

    /** Number of instructions. */
    uint32_t numInsts() const { return static_cast<uint32_t>(code_.size()); }

    /** Address of the instruction at @p index. */
    uint32_t instAddr(uint32_t index) const { return textBase + 4 * index; }

    /** Word index bound to @p label (panics if unbound). */
    uint32_t labelIndex(LabelId label) const;

    /** All fixups (consumed by the linker). */
    const std::vector<Fixup> &fixups() const { return fixups_; }

    /** All data symbols (addresses filled in by the linker). */
    std::vector<DataSym> &syms() { return syms_; }
    const std::vector<DataSym> &syms() const { return syms_; }

    /** Re-encode all instructions into the binary image `words()`. */
    void reencode();

    /** Encoded text image (valid after reencode()). */
    const std::vector<uint32_t> &words() const { return words_; }

    /** True once the linker has resolved all fixups. */
    bool linked() const { return linked_; }
    void markLinked() { linked_ = true; }

  private:
    std::vector<Inst> code_;
    std::vector<uint32_t> words_;
    std::vector<int64_t> labelIndex_;
    std::vector<DataSym> syms_;
    std::vector<Fixup> fixups_;
    bool linked_ = false;
};

} // namespace facsim

#endif // FACSIM_ASM_PROGRAM_HH
