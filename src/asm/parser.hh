/**
 * @file
 * Textual assembler: parses MIPS-flavoured assembly source into a
 * Program (the same representation AsmBuilder emits), so workloads and
 * test programs can be written as .s text instead of C++.
 *
 * Supported syntax:
 *
 *     # comment                     ; also "//" comments
 *             .text                 ; section directives
 *             .data                 ; general data segment
 *             .sdata                ; gp-addressed small data
 *     label:                        ; code label or data symbol
 *             .word  1, 2, 0xff     ; 32-bit values
 *             .byte  1, 2           ; 8-bit values
 *             .half  1, 2           ; 16-bit values
 *             .double 1.5, 2.0      ; 64-bit IEEE values
 *             .space 64             ; zero-filled bytes
 *             .align 8              ; set the next symbol's alignment
 *
 *             li    $t0, 0x1234     ; pseudo-ops: li, la, move, nop, b
 *             lw    $t1, 8($s0)     ; register+constant addressing
 *             lw    $t1, var($gp)   ; gp-relative symbol reference
 *             lw    $t1, ($s0+$t2)  ; register+register addressing
 *             lw    $t1, ($s0)+4    ; post-increment (negative = dec)
 *             la    $t1, var        ; absolute symbol address
 *             beq   $t0, $zero, done
 *             add.d $f2, $f4, $f6   ; FP registers are $f0..$f31
 *             halt
 *
 * Errors (unknown mnemonics, malformed operands, range violations) are
 * reported via fatal() with the source line number.
 */

#ifndef FACSIM_ASM_PARSER_HH
#define FACSIM_ASM_PARSER_HH

#include <string>

#include "asm/program.hh"

namespace facsim
{

/**
 * Assemble @p source into @p prog (which must be empty). The program
 * still needs to be linked before execution.
 */
void parseAsm(const std::string &source, Program &prog);

} // namespace facsim

#endif // FACSIM_ASM_PARSER_HH
