#include "asm/parser.hh"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "asm/builder.hh"
#include "util/logging.hh"
#include "util/parse.hh"

namespace facsim
{

namespace
{

/** Parser state threaded through the line handlers. */
struct ParseState
{
    Program &prog;
    AsmBuilder as;
    int lineNo = 0;

    enum class Section { Text, Data, SData } section = Section::Text;

    // Code labels by name (forward references allowed).
    std::map<std::string, LabelId> labels;
    // Data symbols by name (forward references allowed too).
    std::map<std::string, SymId> symbols;
    std::set<std::string> definedSyms;

    // The data symbol currently accumulating bytes.
    std::optional<SymId> openSym;
    uint32_t nextAlign = 4;

    explicit ParseState(Program &p) : prog(p), as(p) {}

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal("asm parse error, line %d: %s", lineNo, msg.c_str());
    }

    LabelId
    label(const std::string &name)
    {
        auto it = labels.find(name);
        if (it != labels.end())
            return it->second;
        LabelId l = prog.newLabel();
        labels.emplace(name, l);
        return l;
    }
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.';
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Split operand text at top-level commas (parentheses kept intact). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/**
 * Strict decimal register number in [0, 32): digits only, whole token.
 * The digits-only pre-check also keeps tryU64's 0x-hex forms out —
 * "$0x10" and "$f1x" are malformed register tokens, not registers.
 */
std::optional<uint8_t>
parseRegNum(const std::string &n)
{
    if (n.empty() ||
        n.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    uint64_t v;
    if (!parse::tryU64(n, &v) || v >= 32)
        return std::nullopt;
    return static_cast<uint8_t>(v);
}

/** Integer register by name ("$t0", "$3", "$sp"). */
std::optional<uint8_t>
parseIntReg(const std::string &t)
{
    if (t.size() < 2 || t[0] != '$')
        return std::nullopt;
    std::string n = t.substr(1);
    if (std::isdigit(static_cast<unsigned char>(n[0])))
        return parseRegNum(n);
    for (unsigned r = 0; r < 32; ++r) {
        if (n == regName(r))
            return static_cast<uint8_t>(r);
    }
    return std::nullopt;
}

/** FP register by name ("$f12"). */
std::optional<uint8_t>
parseFpReg(const std::string &t)
{
    if (t.size() < 3 || t[0] != '$' || t[1] != 'f')
        return std::nullopt;
    return parseRegNum(t.substr(2));
}

std::optional<int64_t>
parseInt(const std::string &t)
{
    if (t.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(t.c_str(), &end, 0);
    if (errno != 0 || end != t.c_str() + t.size())
        return std::nullopt;
    return v;
}

uint8_t
needIntReg(ParseState &st, const std::string &t)
{
    auto r = parseIntReg(t);
    if (!r)
        st.fail("expected integer register, got '" + t + "'");
    return *r;
}

uint8_t
needFpReg(ParseState &st, const std::string &t)
{
    auto r = parseFpReg(t);
    if (!r)
        st.fail("expected FP register, got '" + t + "'");
    return *r;
}

int32_t
needInt(ParseState &st, const std::string &t, int64_t lo, int64_t hi)
{
    auto v = parseInt(t);
    if (!v || *v < lo || *v > hi)
        st.fail("expected integer in [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "], got '" + t + "'");
    return static_cast<int32_t>(*v);
}

/** A parsed memory operand in one of the three addressing modes. */
struct MemOperand
{
    AMode amode = AMode::RegConst;
    uint8_t base = 0;
    uint8_t index = 0;     // RegReg
    int32_t imm = 0;       // RegConst offset or PostInc stride
    std::string gpSym;     // non-empty: gp-relative symbol reference
    int32_t gpAddend = 0;
};

/**
 * Parse "off(base)", "sym($gp)", "sym+4($gp)", "(base+index)" or
 * "(base)+stride".
 */
MemOperand
parseMemOperand(ParseState &st, const std::string &t)
{
    MemOperand m;
    size_t open = t.find('(');
    size_t close = t.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        st.fail("malformed memory operand '" + t + "'");

    std::string before = trim(t.substr(0, open));
    std::string inside = trim(t.substr(open + 1, close - open - 1));
    std::string after = trim(t.substr(close + 1));

    if (!after.empty()) {
        // (base)+stride — post-increment/decrement ("(r)+4", "(r)+-4").
        if (!before.empty())
            st.fail("post-increment operand cannot have an offset");
        if (after[0] == '+')
            after = trim(after.substr(1));
        m.amode = AMode::PostInc;
        m.base = needIntReg(st, inside);
        m.imm = needInt(st, after, -32768, 32767);
        return m;
    }

    size_t plus = inside.find('+');
    if (plus != std::string::npos && inside[0] == '$') {
        // (base+index) — register+register.
        if (!before.empty())
            st.fail("register+register operand cannot have an offset");
        m.amode = AMode::RegReg;
        m.base = needIntReg(st, trim(inside.substr(0, plus)));
        m.index = needIntReg(st, trim(inside.substr(plus + 1)));
        return m;
    }

    // off(base) or sym(+addend)($gp).
    m.amode = AMode::RegConst;
    m.base = needIntReg(st, inside);
    if (before.empty()) {
        m.imm = 0;
        return m;
    }
    if (parseInt(before)) {
        m.imm = needInt(st, before, -32768, 32767);
        return m;
    }
    // Symbolic: name or name+addend; only meaningful off $gp.
    if (m.base != reg::gp)
        st.fail("symbolic offsets are only supported via ($gp)");
    size_t sp = before.find('+');
    if (sp == std::string::npos) {
        m.gpSym = before;
    } else {
        m.gpSym = trim(before.substr(0, sp));
        m.gpAddend = needInt(st, trim(before.substr(sp + 1)),
                             INT32_MIN, INT32_MAX);
    }
    return m;
}

SymId
needSym(ParseState &st, const std::string &name)
{
    auto it = st.symbols.find(name);
    if (it != st.symbols.end())
        return it->second;
    // Forward reference: allocate the symbol now; a later data label
    // must define it.
    SymId s = st.prog.addSym(DataSym{.name = name, .size = 0,
                                     .align = 4});
    st.symbols.emplace(name, s);
    return s;
}

/** Close the data symbol being accumulated, fixing its size. */
void
closeSym(ParseState &st)
{
    if (!st.openSym)
        return;
    DataSym &s = st.prog.syms()[*st.openSym];
    s.size = static_cast<uint32_t>(s.init.size());
    if (s.size == 0)
        s.size = 1;
    st.openSym.reset();
}

void
appendBytes(ParseState &st, const void *data, size_t n)
{
    if (!st.openSym)
        st.fail("data directive outside a labelled object");
    DataSym &s = st.prog.syms()[*st.openSym];
    const uint8_t *p = static_cast<const uint8_t *>(data);
    s.init.insert(s.init.end(), p, p + n);
}

void
handleDirective(ParseState &st, const std::string &dir,
                const std::vector<std::string> &ops)
{
    if (dir == ".text") {
        closeSym(st);
        st.section = ParseState::Section::Text;
        return;
    }
    if (dir == ".data" || dir == ".sdata") {
        closeSym(st);
        st.section = dir == ".data" ? ParseState::Section::Data
                                    : ParseState::Section::SData;
        return;
    }
    if (dir == ".align") {
        if (ops.size() != 1)
            st.fail(".align takes one operand");
        st.nextAlign = static_cast<uint32_t>(
            needInt(st, ops[0], 1, 4096));
        return;
    }
    if (st.section == ParseState::Section::Text)
        st.fail("data directive '" + dir + "' in .text");

    if (dir == ".word") {
        for (const std::string &o : ops) {
            auto v = parseInt(o);
            if (!v)
                st.fail("bad .word value '" + o + "'");
            uint32_t w = static_cast<uint32_t>(*v);
            appendBytes(st, &w, 4);
        }
    } else if (dir == ".half") {
        for (const std::string &o : ops) {
            uint16_t h = static_cast<uint16_t>(
                needInt(st, o, -32768, 65535));
            appendBytes(st, &h, 2);
        }
    } else if (dir == ".byte") {
        for (const std::string &o : ops) {
            uint8_t b = static_cast<uint8_t>(needInt(st, o, -128, 255));
            appendBytes(st, &b, 1);
        }
    } else if (dir == ".double") {
        for (const std::string &o : ops) {
            char *end = nullptr;
            double d = std::strtod(o.c_str(), &end);
            if (end != o.c_str() + o.size())
                st.fail("bad .double value '" + o + "'");
            appendBytes(st, &d, 8);
        }
    } else if (dir == ".space") {
        if (ops.size() != 1)
            st.fail(".space takes one operand");
        int32_t n = needInt(st, ops[0], 0, 1 << 24);
        std::vector<uint8_t> zeros(static_cast<size_t>(n), 0);
        if (n)
            appendBytes(st, zeros.data(), zeros.size());
    } else {
        st.fail("unknown directive '" + dir + "'");
    }
}

void
emitMem(ParseState &st, const std::string &mn, const std::string &data_op,
        const std::string &mem_op)
{
    static const std::map<std::string, Op> mem_ops = {
        {"lb", Op::LB}, {"lbu", Op::LBU}, {"lh", Op::LH},
        {"lhu", Op::LHU}, {"lw", Op::LW}, {"sb", Op::SB},
        {"sh", Op::SH}, {"sw", Op::SW}, {"lwc1", Op::LWC1},
        {"ldc1", Op::LDC1}, {"swc1", Op::SWC1}, {"sdc1", Op::SDC1},
    };
    Op op = mem_ops.at(mn);
    uint8_t data = isFpMem(op) ? needFpReg(st, data_op)
                               : needIntReg(st, data_op);
    MemOperand m = parseMemOperand(st, mem_op);

    if (!m.gpSym.empty()) {
        SymId sym = needSym(st, m.gpSym);
        uint32_t idx = st.prog.append(
            Inst{.op = op, .amode = AMode::RegConst, .rs = reg::gp,
                 .rt = data, .imm = 0});
        st.prog.addFixup({Fixup::Kind::GpRel, idx, sym, m.gpAddend});
        return;
    }
    if (m.amode == AMode::PostInc &&
        (op == Op::LH || op == Op::LHU || op == Op::SH)) {
        st.fail("post-increment is not encodable for halfword accesses");
    }
    st.prog.append(Inst{.op = op, .amode = m.amode, .rd = m.index,
                        .rs = m.base, .rt = data, .imm = m.imm});
}

void
handleInstruction(ParseState &st, const std::string &mn,
                  const std::vector<std::string> &ops)
{
    AsmBuilder &as = st.as;

    auto need = [&](size_t n) {
        if (ops.size() != n)
            st.fail(mn + " takes " + std::to_string(n) + " operand(s)");
    };
    auto ireg = [&](size_t i) { return needIntReg(st, ops[i]); };
    auto freg = [&](size_t i) { return needFpReg(st, ops[i]); };
    auto imm16 = [&](size_t i) { return needInt(st, ops[i], -32768,
                                                65535); };

    // Three-register integer ALU.
    static const std::map<std::string, Op> alu3 = {
        {"add", Op::ADD}, {"sub", Op::SUB}, {"and", Op::AND},
        {"or", Op::OR}, {"xor", Op::XOR}, {"nor", Op::NOR},
        {"slt", Op::SLT}, {"sltu", Op::SLTU}, {"mul", Op::MUL},
        {"div", Op::DIV}, {"rem", Op::REM}, {"sllv", Op::SLLV},
        {"srlv", Op::SRLV}, {"srav", Op::SRAV},
    };
    if (auto it = alu3.find(mn); it != alu3.end()) {
        need(3);
        st.prog.append(Inst{.op = it->second, .rd = ireg(0),
                            .rs = ireg(1), .rt = ireg(2)});
        return;
    }

    // Immediate ALU.
    static const std::map<std::string, Op> alui = {
        {"addi", Op::ADDI}, {"andi", Op::ANDI}, {"ori", Op::ORI},
        {"xori", Op::XORI}, {"slti", Op::SLTI}, {"sltiu", Op::SLTIU},
    };
    if (auto it = alui.find(mn); it != alui.end()) {
        need(3);
        st.prog.append(Inst{.op = it->second, .rs = ireg(1),
                            .rt = ireg(0), .imm = imm16(2)});
        return;
    }

    // Shifts by immediate.
    static const std::map<std::string, Op> shifts = {
        {"sll", Op::SLL}, {"srl", Op::SRL}, {"sra", Op::SRA},
    };
    if (auto it = shifts.find(mn); it != shifts.end()) {
        need(3);
        st.prog.append(Inst{.op = it->second, .rd = ireg(0),
                            .rs = ireg(1),
                            .imm = needInt(st, ops[2], 0, 31)});
        return;
    }

    // Memory operations.
    static const char *mem_names[] = {
        "lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw",
        "lwc1", "ldc1", "swc1", "sdc1",
    };
    for (const char *m : mem_names) {
        if (mn == m) {
            need(2);
            emitMem(st, mn, ops[0], ops[1]);
            return;
        }
    }

    // Branches.
    static const std::map<std::string, Op> br2 = {
        {"beq", Op::BEQ}, {"bne", Op::BNE},
    };
    if (auto it = br2.find(mn); it != br2.end()) {
        need(3);
        uint8_t rs = ireg(0), rt = ireg(1);
        uint32_t idx = st.prog.append(Inst{.op = it->second, .rs = rs,
                                           .rt = rt});
        st.prog.addFixup({Fixup::Kind::Branch, idx, st.label(ops[2]), 0});
        return;
    }
    static const std::map<std::string, Op> br1 = {
        {"blez", Op::BLEZ}, {"bgtz", Op::BGTZ}, {"bltz", Op::BLTZ},
        {"bgez", Op::BGEZ},
    };
    if (auto it = br1.find(mn); it != br1.end()) {
        need(2);
        uint8_t rs = ireg(0);
        uint32_t idx = st.prog.append(Inst{.op = it->second, .rs = rs});
        st.prog.addFixup({Fixup::Kind::Branch, idx, st.label(ops[1]), 0});
        return;
    }
    if (mn == "bc1t" || mn == "bc1f") {
        need(1);
        uint32_t idx = st.prog.append(
            Inst{.op = mn == "bc1t" ? Op::BC1T : Op::BC1F});
        st.prog.addFixup({Fixup::Kind::Branch, idx, st.label(ops[0]), 0});
        return;
    }

    // Jumps.
    if (mn == "j" || mn == "b" || mn == "jal") {
        need(1);
        uint32_t idx = st.prog.append(
            Inst{.op = mn == "jal" ? Op::JAL : Op::J});
        st.prog.addFixup({Fixup::Kind::Jump, idx, st.label(ops[0]), 0});
        return;
    }
    if (mn == "jr") {
        need(1);
        as.jr(ireg(0));
        return;
    }
    if (mn == "jalr") {
        if (ops.size() == 1)
            as.jalr(reg::ra, ireg(0));
        else if (ops.size() == 2)
            as.jalr(ireg(0), ireg(1));
        else
            st.fail("jalr takes 1 or 2 operands");
        return;
    }

    // Floating point.
    static const std::map<std::string, Op> fp3 = {
        {"add.d", Op::ADD_D}, {"sub.d", Op::SUB_D},
        {"mul.d", Op::MUL_D}, {"div.d", Op::DIV_D},
    };
    if (auto it = fp3.find(mn); it != fp3.end()) {
        need(3);
        st.prog.append(Inst{.op = it->second, .rd = freg(0),
                            .rs = freg(1), .rt = freg(2)});
        return;
    }
    static const std::map<std::string, Op> fp2 = {
        {"sqrt.d", Op::SQRT_D}, {"abs.d", Op::ABS_D},
        {"neg.d", Op::NEG_D}, {"mov.d", Op::MOV_D},
        {"cvt.d.w", Op::CVT_D_W}, {"cvt.w.d", Op::CVT_W_D},
    };
    if (auto it = fp2.find(mn); it != fp2.end()) {
        need(2);
        st.prog.append(Inst{.op = it->second, .rd = freg(0),
                            .rs = freg(1)});
        return;
    }
    static const std::map<std::string, Op> fpc = {
        {"c.eq.d", Op::C_EQ_D}, {"c.lt.d", Op::C_LT_D},
        {"c.le.d", Op::C_LE_D},
    };
    if (auto it = fpc.find(mn); it != fpc.end()) {
        need(2);
        st.prog.append(Inst{.op = it->second, .rs = freg(0),
                            .rt = freg(1)});
        return;
    }
    if (mn == "mtc1") {
        need(2);
        as.mtc1(needFpReg(st, ops[1]), ireg(0));
        return;
    }
    if (mn == "mfc1") {
        need(2);
        as.mfc1(ireg(0), needFpReg(st, ops[1]));
        return;
    }

    // Pseudo-ops.
    if (mn == "li") {
        need(2);
        as.li(ireg(0), needInt(st, ops[1], INT32_MIN, INT32_MAX));
        return;
    }
    if (mn == "lui") {
        need(2);
        as.lui(ireg(0), needInt(st, ops[1], 0, 65535));
        return;
    }
    if (mn == "la") {
        need(2);
        as.la(ireg(0), needSym(st, ops[1]));
        return;
    }
    if (mn == "move") {
        need(2);
        as.move(ireg(0), ireg(1));
        return;
    }
    if (mn == "nop") {
        need(0);
        as.nop();
        return;
    }
    if (mn == "halt") {
        need(0);
        as.halt();
        return;
    }

    st.fail("unknown mnemonic '" + mn + "'");
}

} // anonymous namespace

void
parseAsm(const std::string &source, Program &prog)
{
    FACSIM_ASSERT(prog.numInsts() == 0 && prog.syms().empty(),
                  "parseAsm needs an empty program");
    ParseState st(prog);

    std::istringstream in(source);
    std::string raw;
    while (std::getline(in, raw)) {
        ++st.lineNo;
        // Strip comments.
        std::string line = raw;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        size_t slashes = line.find("//");
        if (slashes != std::string::npos)
            line = line.substr(0, slashes);
        line = trim(line);
        if (line.empty())
            continue;

        // Leading label(s).
        while (true) {
            size_t i = 0;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            if (i == 0 || i >= line.size() || line[i] != ':')
                break;
            std::string name = line.substr(0, i);
            line = trim(line.substr(i + 1));
            if (st.section == ParseState::Section::Text) {
                LabelId l = st.label(name);
                st.prog.bind(l);
            } else {
                closeSym(st);
                if (st.definedSyms.count(name))
                    st.fail("duplicate symbol '" + name + "'");
                SymId s;
                auto it = st.symbols.find(name);
                if (it != st.symbols.end()) {
                    s = it->second;  // was forward-referenced
                } else {
                    s = st.prog.addSym(DataSym{.name = name});
                    st.symbols.emplace(name, s);
                }
                DataSym &ds = st.prog.syms()[s];
                ds.align = st.nextAlign;
                ds.smallData =
                    st.section == ParseState::Section::SData;
                st.definedSyms.insert(name);
                st.openSym = s;
                st.nextAlign = 4;
            }
        }
        if (line.empty())
            continue;

        // Mnemonic/directive + operands.
        size_t sp = line.find_first_of(" \t");
        std::string head = sp == std::string::npos ? line
                                                   : line.substr(0, sp);
        std::string rest = sp == std::string::npos
            ? "" : trim(line.substr(sp + 1));
        std::vector<std::string> ops = splitOperands(rest);

        if (head[0] == '.') {
            handleDirective(st, head, ops);
        } else {
            if (st.section != ParseState::Section::Text)
                st.fail("instruction outside .text");
            handleInstruction(st, head, ops);
        }
    }
    closeSym(st);

    for (const auto &[name, sym] : st.symbols) {
        if (!st.definedSyms.count(name))
            fatal("asm parse error: symbol '%s' referenced but never "
                  "defined", name.c_str());
    }
}

} // namespace facsim
