/**
 * @file
 * AsmBuilder: the instruction-emission DSL the workload kernels are written
 * in. It plays the role of the paper's modified GCC back end — every load
 * and store a workload performs is emitted through this interface, so the
 * code-generation policies of Section 4 (stack frame layout, allocation
 * alignment, gp-relative addressing) are applied here and in the linker.
 */

#ifndef FACSIM_ASM_BUILDER_HH
#define FACSIM_ASM_BUILDER_HH

#include <cstdint>
#include <string>

#include "asm/program.hh"
#include "isa/inst.hh"

namespace facsim
{

/**
 * Thin, checked instruction emitter over a Program. Register operands use
 * the reg:: constants; memory operands come in three addressing modes
 * matching the ISA (reg+const, reg+reg, post-increment).
 */
class AsmBuilder
{
  public:
    /** Build into @p prog (not owned). */
    explicit AsmBuilder(Program &prog) : p(prog) {}

    /** The program being built. */
    Program &program() { return p; }

    // --- labels ----------------------------------------------------------
    LabelId newLabel() { return p.newLabel(); }
    void bind(LabelId l) { p.bind(l); }

    // --- integer ALU, register form --------------------------------------
    void add(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::ADD, rd, rs, rt); }
    void sub(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::SUB, rd, rs, rt); }
    void and_(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::AND, rd, rs, rt); }
    void or_(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::OR, rd, rs, rt); }
    void xor_(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::XOR, rd, rs, rt); }
    void nor(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::NOR, rd, rs, rt); }
    void slt(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::SLT, rd, rs, rt); }
    void sltu(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::SLTU, rd, rs, rt); }
    void mul(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::MUL, rd, rs, rt); }
    void div(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::DIV, rd, rs, rt); }
    void rem(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::REM, rd, rs, rt); }
    void sllv(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::SLLV, rd, rs, rt); }
    void srlv(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::SRLV, rd, rs, rt); }
    void srav(uint8_t rd, uint8_t rs, uint8_t rt) { r3(Op::SRAV, rd, rs, rt); }

    // --- integer ALU, immediate form --------------------------------------
    void addi(uint8_t rt, uint8_t rs, int32_t imm);
    void andi(uint8_t rt, uint8_t rs, int32_t imm);
    void ori(uint8_t rt, uint8_t rs, int32_t imm) { i3(Op::ORI, rt, rs, imm); }
    void xori(uint8_t rt, uint8_t rs, int32_t imm);
    void slti(uint8_t rt, uint8_t rs, int32_t imm);
    void sltiu(uint8_t rt, uint8_t rs, int32_t imm);
    void lui(uint8_t rt, int32_t imm16);
    void sll(uint8_t rd, uint8_t rs, int32_t shamt);
    void srl(uint8_t rd, uint8_t rs, int32_t shamt);
    void sra(uint8_t rd, uint8_t rs, int32_t shamt);

    // --- pseudo-ops --------------------------------------------------------
    /** Load a 32-bit constant (1 or 2 instructions). */
    void li(uint8_t rt, int32_t value);
    /** Register move. */
    void move(uint8_t rd, uint8_t rs) { or_(rd, rs, reg::zero); }
    void nop() { p.append(Inst{}); }
    void halt() { p.append(Inst{.op = Op::HALT}); }

    /** Load the absolute address of a data symbol (lui/ori pair). */
    void la(uint8_t rt, SymId sym, int32_t addend = 0);
    /** Compute the address of a small-data symbol as gp + offset. */
    void laGp(uint8_t rt, SymId sym, int32_t addend = 0);

    // --- memory, reg+const -------------------------------------------------
    void lb(uint8_t rt, int32_t off, uint8_t base);
    void lbu(uint8_t rt, int32_t off, uint8_t base);
    void lh(uint8_t rt, int32_t off, uint8_t base);
    void lhu(uint8_t rt, int32_t off, uint8_t base);
    void lw(uint8_t rt, int32_t off, uint8_t base);
    void sb(uint8_t rt, int32_t off, uint8_t base);
    void sh_(uint8_t rt, int32_t off, uint8_t base);
    void sw(uint8_t rt, int32_t off, uint8_t base);
    void lwc1(uint8_t ft, int32_t off, uint8_t base);
    void ldc1(uint8_t ft, int32_t off, uint8_t base);
    void swc1(uint8_t ft, int32_t off, uint8_t base);
    void sdc1(uint8_t ft, int32_t off, uint8_t base);

    /** Load/store a small-data global through the global pointer. */
    void lwGp(uint8_t rt, SymId sym, int32_t addend = 0);
    void swGp(uint8_t rt, SymId sym, int32_t addend = 0);
    void ldc1Gp(uint8_t ft, SymId sym, int32_t addend = 0);
    void sdc1Gp(uint8_t ft, SymId sym, int32_t addend = 0);

    // --- memory, reg+reg ----------------------------------------------------
    void lbRR(uint8_t rt, uint8_t base, uint8_t idx);
    void lbuRR(uint8_t rt, uint8_t base, uint8_t idx);
    void lhRR(uint8_t rt, uint8_t base, uint8_t idx);
    void lwRR(uint8_t rt, uint8_t base, uint8_t idx);
    void sbRR(uint8_t rt, uint8_t base, uint8_t idx);
    void swRR(uint8_t rt, uint8_t base, uint8_t idx);
    void lwc1RR(uint8_t ft, uint8_t base, uint8_t idx);
    void ldc1RR(uint8_t ft, uint8_t base, uint8_t idx);
    void swc1RR(uint8_t ft, uint8_t base, uint8_t idx);
    void sdc1RR(uint8_t ft, uint8_t base, uint8_t idx);

    // --- memory, post-increment (negative stride = post-decrement) ---------
    void lbPost(uint8_t rt, uint8_t base, int32_t stride);
    void lbuPost(uint8_t rt, uint8_t base, int32_t stride);
    void lwPost(uint8_t rt, uint8_t base, int32_t stride);
    void sbPost(uint8_t rt, uint8_t base, int32_t stride);
    void swPost(uint8_t rt, uint8_t base, int32_t stride);
    void lwc1Post(uint8_t ft, uint8_t base, int32_t stride);
    void ldc1Post(uint8_t ft, uint8_t base, int32_t stride);
    void swc1Post(uint8_t ft, uint8_t base, int32_t stride);
    void sdc1Post(uint8_t ft, uint8_t base, int32_t stride);

    // --- control ------------------------------------------------------------
    void beq(uint8_t rs, uint8_t rt, LabelId l) { br2(Op::BEQ, rs, rt, l); }
    void bne(uint8_t rs, uint8_t rt, LabelId l) { br2(Op::BNE, rs, rt, l); }
    void blez(uint8_t rs, LabelId l) { br2(Op::BLEZ, rs, 0, l); }
    void bgtz(uint8_t rs, LabelId l) { br2(Op::BGTZ, rs, 0, l); }
    void bltz(uint8_t rs, LabelId l) { br2(Op::BLTZ, rs, 0, l); }
    void bgez(uint8_t rs, LabelId l) { br2(Op::BGEZ, rs, 0, l); }
    void bc1t(LabelId l) { br2(Op::BC1T, 0, 0, l); }
    void bc1f(LabelId l) { br2(Op::BC1F, 0, 0, l); }
    void j(LabelId l);
    void jal(LabelId l);
    void jr(uint8_t rs);
    void jalr(uint8_t rd, uint8_t rs);

    // --- floating point ----------------------------------------------------
    void addD(uint8_t fd, uint8_t fs, uint8_t ft);
    void subD(uint8_t fd, uint8_t fs, uint8_t ft);
    void mulD(uint8_t fd, uint8_t fs, uint8_t ft);
    void divD(uint8_t fd, uint8_t fs, uint8_t ft);
    void sqrtD(uint8_t fd, uint8_t fs) { r3(Op::SQRT_D, fd, fs, 0); }
    void absD(uint8_t fd, uint8_t fs) { r3(Op::ABS_D, fd, fs, 0); }
    void negD(uint8_t fd, uint8_t fs) { r3(Op::NEG_D, fd, fs, 0); }
    void movD(uint8_t fd, uint8_t fs) { r3(Op::MOV_D, fd, fs, 0); }
    void cvtDW(uint8_t fd, uint8_t fs) { r3(Op::CVT_D_W, fd, fs, 0); }
    void cvtWD(uint8_t fd, uint8_t fs) { r3(Op::CVT_W_D, fd, fs, 0); }
    void cEqD(uint8_t fs, uint8_t ft) { cmp(Op::C_EQ_D, fs, ft); }
    void cLtD(uint8_t fs, uint8_t ft) { cmp(Op::C_LT_D, fs, ft); }
    void cLeD(uint8_t fs, uint8_t ft) { cmp(Op::C_LE_D, fs, ft); }
    void mtc1(uint8_t fd, uint8_t rt);
    void mfc1(uint8_t rd, uint8_t fs);

    // --- data symbols -----------------------------------------------------
    /** Declare a zero-initialised global. */
    SymId global(const std::string &name, uint32_t size, uint32_t align,
                 bool small_data = false);
    /** Declare a global with initial contents. */
    SymId globalInit(const std::string &name, std::vector<uint8_t> init,
                     uint32_t align, bool small_data = false);

  private:
    void r3(Op op, uint8_t rd, uint8_t rs, uint8_t rt);
    void i3(Op op, uint8_t rt, uint8_t rs, int32_t imm);
    void sh(Op op, uint8_t rd, uint8_t rs, int32_t shamt);
    void memC(Op op, uint8_t rt, int32_t off, uint8_t base);
    void memX(Op op, uint8_t rt, uint8_t base, uint8_t idx);
    void memP(Op op, uint8_t rt, uint8_t base, int32_t stride);
    void memGp(Op op, uint8_t rt, SymId sym, int32_t addend);
    void br2(Op op, uint8_t rs, uint8_t rt, LabelId l);
    void cmp(Op op, uint8_t fs, uint8_t ft);

    Program &p;
};

} // namespace facsim

#endif // FACSIM_ASM_BUILDER_HH
