/**
 * @file
 * Parameterised cache model. The paper's configuration is 16 KB
 * direct-mapped with 16- or 32-byte blocks, write-back, write-allocate and
 * a 6-cycle miss latency; the model also supports set associativity (LRU)
 * so the benches can run geometry ablations.
 *
 * The model tracks tag state (valid/dirty) and hit/miss statistics only;
 * data always comes functionally from Memory. Timing (miss latency,
 * ports, outstanding misses) is imposed by the pipeline model, which is
 * the component that knows about cycles.
 *
 * The address split this cache implies — block offset bits [B-1:0], set
 * index bits [S-1:B], tag [31:S] with 2^S = size/assoc — is exactly the
 * split the fast-address-calculation predictor operates on (Figure 4).
 */

#ifndef FACSIM_CACHE_CACHE_HH
#define FACSIM_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/serialize.hh"

namespace facsim
{

/** Geometry and policy parameters for one cache. */
struct CacheConfig
{
    uint32_t sizeBytes = 16 * 1024;
    uint32_t blockBytes = 32;
    uint32_t assoc = 1;
    unsigned missLatency = 6;  ///< cycles; consumed by the pipeline

    /** Block-offset field width B. */
    unsigned blockBits() const;
    /** Total set-field width S (2^S bytes spanned by index+offset). */
    unsigned setBits() const;
    /** Number of sets. */
    uint32_t numSets() const { return sizeBytes / blockBytes / assoc; }

    /**
     * Die with a clear message unless the geometry is coherent:
     * size/block/assoc powers of two, block at least one word and no
     * larger than the cache, and enough sets for the associativity.
     * @param what label for the error message ("L2 cache", ...).
     */
    void validate(const char *what = "cache") const;
};

/** Result of a cache access. */
struct CacheAccess
{
    bool hit = false;
    bool writeback = false;  ///< a dirty victim was evicted
    /** Block-aligned address of the evicted victim (valid iff writeback). */
    uint32_t victimAddr = 0;
};

/** Tag-state cache model with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Look up @p addr for a read; fills (allocates) on miss. */
    CacheAccess read(uint32_t addr);

    /** Look up @p addr for a write; write-allocate, marks dirty. */
    CacheAccess write(uint32_t addr);

    /**
     * Functional-warming access: identical tag-fill/LRU/dirty behaviour
     * to read()/write(), but updates no statistics counters. Used by
     * sampled simulation to keep cache state warm during fast-forward
     * without polluting measured-window stats.
     */
    CacheAccess warm(uint32_t addr, bool is_write);

    /** Tag probe with no state change (store-buffer tag check). */
    bool probe(uint32_t addr) const;

    /**
     * Way currently holding @p addr's block, or -1 when absent; no
     * state change. This is the way-memoization verify hook: a
     * memoized way may only skip the tag read while it still equals
     * wayOf() for the block — anything else is a stale entry the late
     * verify must catch.
     */
    int wayOf(uint32_t addr) const;

    /** Invalidate everything and clear statistics. */
    void reset();

    /** Serialize tag state, LRU clock and statistics. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (geometry must match). */
    void loadState(ser::Reader &r);

    /** Geometry this cache was built with. */
    const CacheConfig &config() const { return cfg; }

    /** @{ @name Statistics */
    uint64_t reads() const { return reads_; }
    uint64_t writes() const { return writes_; }
    uint64_t readMisses() const { return readMisses_; }
    uint64_t writeMisses() const { return writeMisses_; }
    uint64_t writebacks() const { return writebacks_; }
    uint64_t accesses() const { return reads_ + writes_; }
    uint64_t misses() const { return readMisses_ + writeMisses_; }
    double missRatio() const
    {
        return accesses() ? static_cast<double>(misses()) / accesses() : 0.0;
    }
    /** @} */

  private:
    struct Line
    {
        uint32_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;  ///< LRU timestamp
    };

    /** Index of the first line of the set containing @p addr. */
    uint32_t
    setBase(uint32_t addr) const
    {
        return ((addr >> blockBits_) & setMask_) * cfg.assoc;
    }
    uint32_t tagOf(uint32_t addr) const { return addr >> setShift_; }
    /** Common lookup/fill; returns the access outcome. */
    CacheAccess touch(uint32_t addr, bool is_write, bool count_stats);

    CacheConfig cfg;
    // Geometry, precomputed once: touch() runs on every simulated
    // cache access (and on every fast-forwarded one during sampling),
    // so the field widths must not be re-derived per access.
    unsigned blockBits_ = 0;
    unsigned setShift_ = 0;
    uint32_t setMask_ = 0;
    std::vector<Line> lines;
    uint64_t useClock = 0;
    uint64_t reads_ = 0, writes_ = 0;
    uint64_t readMisses_ = 0, writeMisses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace facsim

#endif // FACSIM_CACHE_CACHE_HH
