#include "cache/store_buffer.hh"

#include "util/logging.hh"

namespace facsim
{

void
StoreBuffer::push(uint32_t addr, uint64_t seq, bool addr_valid)
{
    FACSIM_ASSERT(!full(), "store buffer overflow — pipeline must stall");
    entries.push_back(Entry{addr, seq, addr_valid});
}

void
StoreBuffer::patchAddr(uint64_t seq, uint32_t addr)
{
    for (Entry &e : entries) {
        if (e.seq == seq) {
            e.addr = addr;
            e.addrValid = true;
            return;
        }
    }
    panic("store buffer patch for unknown store seq %llu",
          static_cast<unsigned long long>(seq));
}

const StoreBuffer::Entry &
StoreBuffer::front() const
{
    FACSIM_ASSERT(!entries.empty(), "front() on empty store buffer");
    return entries.front();
}

bool
StoreBuffer::canRetire() const
{
    return !entries.empty() && entries.front().addrValid;
}

void
StoreBuffer::pop()
{
    FACSIM_ASSERT(!entries.empty(), "pop() on empty store buffer");
    entries.pop_front();
}

bool
StoreBuffer::conflicts(uint32_t addr, uint32_t block_bytes) const
{
    uint32_t block = addr / block_bytes;
    for (const Entry &e : entries) {
        // An entry whose address is still pending (a non-speculative
        // store, or a misprediction awaiting its MEM-stage patch) must
        // be treated as a conflict: its architectural address is not
        // known yet, so it could be anywhere. Skipping pending entries
        // would let a load slip past *every* non-speculative store for
        // one cycle.
        if (!e.addrValid || e.addr / block_bytes == block)
            return true;
    }
    return false;
}

} // namespace facsim
