/**
 * @file
 * Non-merging store buffer (paper Section 5.5): stores execute in a
 * two-cycle sequence — the tags are probed when the store executes, and
 * the data is written to the cache in a later cycle when the write port is
 * free. A speculatively executed store whose effective address was
 * mispredicted simply has its buffered address patched (or, viewed from
 * the hardware, the entry reclaimed and re-inserted) in the following
 * cycle, which is the property that makes speculative stores safe to issue
 * under fast address calculation (Section 3.1).
 */

#ifndef FACSIM_CACHE_STORE_BUFFER_HH
#define FACSIM_CACHE_STORE_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/serialize.hh"

namespace facsim
{

/** FIFO of pending stores awaiting retirement into the data cache. */
class StoreBuffer
{
  public:
    /** One buffered store. */
    struct Entry
    {
        uint32_t addr = 0;      ///< effective address (patchable)
        uint64_t seq = 0;       ///< instruction sequence number
        bool addrValid = true;  ///< false while a misprediction is pending
    };

    /** @param capacity number of entries (paper: 16, non-merging). */
    explicit StoreBuffer(unsigned capacity = 16) : cap(capacity) {}

    /** True when no further stores can enter. */
    bool full() const { return entries.size() >= cap; }
    /** True when nothing is pending. */
    bool empty() const { return entries.empty(); }
    /** Current occupancy. */
    size_t size() const { return entries.size(); }
    /** Configured capacity. */
    unsigned capacity() const { return cap; }

    /**
     * Insert a store (panics when full — the pipeline must check full()
     * and stall first, as the paper's model does).
     */
    void push(uint32_t addr, uint64_t seq, bool addr_valid = true);

    /**
     * Patch the address of the (unique) entry for @p seq after a
     * mispredicted store re-executes with its correct address.
     */
    void patchAddr(uint64_t seq, uint32_t addr);

    /** Oldest entry (panics if empty). */
    const Entry &front() const;

    /**
     * True if the oldest entry may retire: its address must be valid (a
     * mispredicted store cannot retire until re-executed).
     */
    bool canRetire() const;

    /** Remove the oldest entry (after the cache write completed). */
    void pop();

    /**
     * True if any buffered store's block overlaps @p addr's block —
     * used to force load/store ordering to the same block. Entries
     * whose address is still pending conservatively conflict with
     * everything.
     */
    bool conflicts(uint32_t addr, uint32_t block_bytes) const;

    /** All entries, oldest first (diagnostics/co-sim access). */
    const std::deque<Entry> &contents() const { return entries; }

    /** Drop everything. */
    void clear() { entries.clear(); }

    /** Serialize the pending entries, oldest first. */
    void
    saveState(ser::Writer &w) const
    {
        w.u64(entries.size());
        for (const Entry &e : entries) {
            w.u32(e.addr);
            w.u64(e.seq);
            w.b(e.addrValid);
        }
    }

    /** Restore entries saved by saveState. */
    void
    loadState(ser::Reader &r)
    {
        entries.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i) {
            Entry e;
            e.addr = r.u32();
            e.seq = r.u64();
            e.addrValid = r.b();
            entries.push_back(e);
        }
    }

  private:
    std::deque<Entry> entries;
    unsigned cap;
};

} // namespace facsim

#endif // FACSIM_CACHE_STORE_BUFFER_HH
