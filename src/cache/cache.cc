#include "cache/cache.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

unsigned
CacheConfig::blockBits() const
{
    return log2i(blockBytes);
}

unsigned
CacheConfig::setBits() const
{
    return log2i(static_cast<uint64_t>(sizeBytes) / assoc);
}

void
CacheConfig::validate(const char *what) const
{
    FACSIM_ASSERT(isPow2(sizeBytes) && isPow2(blockBytes) && isPow2(assoc),
                  "%s geometry must be powers of two "
                  "(size=%u block=%u assoc=%u)",
                  what, sizeBytes, blockBytes, assoc);
    FACSIM_ASSERT(blockBytes >= 4,
                  "%s block (%uB) smaller than one word", what, blockBytes);
    FACSIM_ASSERT(blockBytes <= sizeBytes,
                  "%s block (%uB) larger than the cache (%uB)",
                  what, blockBytes, sizeBytes);
    FACSIM_ASSERT(static_cast<uint64_t>(blockBytes) * assoc <= sizeBytes,
                  "%s too small for its associativity "
                  "(size=%u block=%u assoc=%u needs at least one set)",
                  what, sizeBytes, blockBytes, assoc);
}

Cache::Cache(const CacheConfig &config)
    : cfg(config)
{
    cfg.validate();
    lines.resize(cfg.numSets() * cfg.assoc);
    blockBits_ = cfg.blockBits();
    setShift_ = cfg.setBits();
    setMask_ = cfg.numSets() - 1;
}

CacheAccess
Cache::touch(uint32_t addr, bool is_write, bool count_stats)
{
    ++useClock;
    uint32_t base = setBase(addr);
    uint32_t tag = tagOf(addr);

    // Hit check.
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty = line.dirty || is_write;
            return {true, false, 0};
        }
    }

    // Miss: pick the LRU way (or any invalid one) as the victim.
    uint32_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = lines[base + w];
        if (!line.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (line.lastUse < oldest) {
            oldest = line.lastUse;
            victim = w;
        }
    }

    Line &line = lines[base + victim];
    bool wb = line.valid && line.dirty;
    uint32_t victim_addr = 0;
    if (wb) {
        if (count_stats)
            ++writebacks_;
        // Reconstruct the victim's block address from its tag and set.
        uint32_t set = base / cfg.assoc;
        victim_addr = (line.tag << cfg.setBits()) |
            (set << cfg.blockBits());
    }
    line.valid = true;
    line.dirty = is_write;
    line.tag = tag;
    line.lastUse = useClock;
    return {false, wb, victim_addr};
}

CacheAccess
Cache::read(uint32_t addr)
{
    ++reads_;
    CacheAccess r = touch(addr, false, true);
    if (!r.hit)
        ++readMisses_;
    return r;
}

CacheAccess
Cache::write(uint32_t addr)
{
    ++writes_;
    CacheAccess r = touch(addr, true, true);
    if (!r.hit)
        ++writeMisses_;
    return r;
}

CacheAccess
Cache::warm(uint32_t addr, bool is_write)
{
    return touch(addr, is_write, false);
}

bool
Cache::probe(uint32_t addr) const
{
    uint32_t base = setBase(addr);
    uint32_t tag = tagOf(addr);
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

int
Cache::wayOf(uint32_t addr) const
{
    uint32_t base = setBase(addr);
    uint32_t tag = tagOf(addr);
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

void
Cache::reset()
{
    for (Line &line : lines)
        line = Line{};
    useClock = 0;
    reads_ = writes_ = 0;
    readMisses_ = writeMisses_ = 0;
    writebacks_ = 0;
}

void
Cache::saveState(ser::Writer &w) const
{
    w.u64(lines.size());
    for (const Line &line : lines) {
        w.u32(line.tag);
        w.b(line.valid);
        w.b(line.dirty);
        w.u64(line.lastUse);
    }
    w.u64(useClock);
    w.u64(reads_);
    w.u64(writes_);
    w.u64(readMisses_);
    w.u64(writeMisses_);
    w.u64(writebacks_);
}

void
Cache::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == lines.size(),
                  "checkpoint cache has %llu lines, this config has %zu "
                  "(geometry mismatch)",
                  static_cast<unsigned long long>(n), lines.size());
    for (Line &line : lines) {
        line.tag = r.u32();
        line.valid = r.b();
        line.dirty = r.b();
        line.lastUse = r.u64();
    }
    useClock = r.u64();
    reads_ = r.u64();
    writes_ = r.u64();
    readMisses_ = r.u64();
    writeMisses_ = r.u64();
    writebacks_ = r.u64();
}

} // namespace facsim
