/**
 * @file
 * Functional emulator for the extended MIPS-like ISA. It is the golden
 * model for the timing pipeline (which consumes its dynamic instruction
 * stream) and the engine behind the reference-behaviour profiler used for
 * Tables 1/3/4 and Figure 3.
 */

#ifndef FACSIM_CPU_EMULATOR_HH
#define FACSIM_CPU_EMULATOR_HH

#include <array>
#include <cstdint>

#include "asm/program.hh"
#include "isa/inst.hh"
#include "link/linker.hh"
#include "mem/memory.hh"
#include "util/serialize.hh"

namespace facsim
{

/**
 * Everything the timing model needs to know about one executed
 * instruction: the decoded op, its effective address and the operand
 * values that feed the fast-address-calculation predictor, and the
 * resolved control-flow outcome.
 */
struct ExecRecord
{
    uint32_t pc = 0;
    Inst inst;

    // Memory operations.
    uint32_t effAddr = 0;     ///< architectural effective address
    uint32_t baseVal = 0;     ///< base register value at execute
    int32_t offsetVal = 0;    ///< constant or index-register value
    bool offsetFromReg = false;

    // Control flow.
    bool taken = false;       ///< control transfer changed the PC
    uint32_t nextPc = 0;      ///< PC of the following instruction
};

/** Architectural-state executor. */
class Emulator
{
  public:
    /**
     * @param prog linked program (panics if not linked).
     * @param mem simulated memory with text+data already loaded.
     * @param img link results (gp value, entry point).
     * @param initial_sp startup stack pointer (from StackPolicy).
     */
    Emulator(const Program &prog, Memory &mem, const LinkedImage &img,
             uint32_t initial_sp);

    /**
     * Execute one instruction.
     *
     * @param rec filled with the execution record (may be null).
     * @retval false when the program has halted (no instruction ran).
     */
    bool step(ExecRecord *rec);

    /** Run to completion (or @p max_insts), discarding records. */
    uint64_t run(uint64_t max_insts = 0);

    /**
     * Consumer of the functional-warming traffic produced by runWarm()
     * during sampled-simulation fast-forward: instruction-block
     * fetches, control transfers and data accesses, in retirement
     * order.
     */
    class WarmSink
    {
      public:
        virtual ~WarmSink() = default;
        /** First fetch from a new instruction block. */
        virtual void warmFetch(uint32_t pc) = 0;
        /** Retired control transfer. */
        virtual void warmControl(uint32_t pc, bool taken,
                                 uint32_t next_pc) = 0;
        /** Retired data access. */
        virtual void warmData(uint32_t addr, bool is_store) = 0;
    };

    /**
     * Run up to @p max_insts instructions, reporting warming traffic
     * to @p sink without materializing per-instruction ExecRecords
     * (the sampled-simulation fast-forward hot loop). warmFetch fires
     * once per transition between instruction blocks of 2^@p
     * iblock_bits bytes; a retiring HALT is counted and fetch-warmed
     * but reported as neither control nor data traffic.
     *
     * @return the number of instructions retired.
     */
    uint64_t runWarm(uint64_t max_insts, unsigned iblock_bits,
                     WarmSink &sink);

    /** True once HALT has executed. */
    bool halted() const { return halted_; }

    /** Dynamic instruction count so far. */
    uint64_t instCount() const { return icount; }

    /** Current PC. */
    uint32_t pc() const { return pc_; }

    /** Integer register value. */
    uint32_t intReg(unsigned r) const { return regs[r]; }
    /** Set an integer register (test hook / startup). */
    void setIntReg(unsigned r, uint32_t v);
    /** FP register value. */
    double fpReg(unsigned r) const { return fregs[r]; }
    /** Set an FP register. */
    void setFpReg(unsigned r, double v) { fregs[r] = v; }

    /** FP condition-code flag (set by C.cond.D compares). */
    bool fpccFlag() const { return fpcc; }

    /** The memory this CPU executes against. */
    Memory &memory() { return mem_; }

    /**
     * Serialize the architectural register state (integer/FP registers,
     * FP condition code, PC, halt flag, instruction count). Memory is
     * serialized separately by the owner (it is shared state).
     */
    void saveState(ser::Writer &w) const;

    /** Restore state saved by saveState (same program required). */
    void loadState(ser::Reader &r);

  private:
    /**
     * Core of step()/runWarm(). WithRec fills *rec with the execution
     * record; WithWarm reports warming traffic to *sink. Both compile
     * out entirely when false.
     */
    template <bool WithRec, bool WithWarm>
    bool stepImpl(ExecRecord *rec, WarmSink *sink);

    [[noreturn]] void fetchFault(uint32_t pc) const;

    const Program &prog_;
    /**
     * Predecoded dense execution array: the program's decoded Inst
     * vector, cached as a raw base pointer so the fetch path is one
     * shift + bounds check instead of re-resolving fetchIndex(pc)
     * through Program per instruction. Valid for the Emulator's
     * lifetime (the Program is linked and immutable once execution
     * starts).
     */
    const Inst *code_ = nullptr;
    uint32_t numInsts_ = 0;
    Memory &mem_;
    std::array<uint32_t, numIntRegs> regs{};
    std::array<double, numFpRegs> fregs{};
    bool fpcc = false;
    uint32_t pc_;
    bool halted_ = false;
    uint64_t icount = 0;
};

} // namespace facsim

#endif // FACSIM_CPU_EMULATOR_HH
