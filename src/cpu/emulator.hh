/**
 * @file
 * Functional emulator for the extended MIPS-like ISA. It is the golden
 * model for the timing pipeline (which consumes its dynamic instruction
 * stream) and the engine behind the reference-behaviour profiler used for
 * Tables 1/3/4 and Figure 3.
 *
 * Bulk execution (run()/runWarm()) goes through a translated-block
 * engine: the predecoded stream is lazily decoded into basic blocks of
 * pre-bound handler records (cpu/emu_block.hh) dispatched either by
 * computed goto ("threaded", GCC/Clang) or by a portable switch,
 * selected per process with setDefaultEngine() / per instance with
 * setEngine(). step() keeps the original one-instruction scalar path,
 * so per-record consumers (pipeline, profiler, cosim) are byte-for-byte
 * unaffected by the engine choice.
 */

#ifndef FACSIM_CPU_EMULATOR_HH
#define FACSIM_CPU_EMULATOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "asm/program.hh"
#include "cpu/emu_block.hh"
#include "isa/inst.hh"
#include "link/linker.hh"
#include "mem/memory.hh"
#include "util/serialize.hh"

namespace facsim
{

/**
 * Everything the timing model needs to know about one executed
 * instruction: the decoded op, its effective address and the operand
 * values that feed the fast-address-calculation predictor, and the
 * resolved control-flow outcome.
 */
struct ExecRecord
{
    uint32_t pc = 0;
    Inst inst;

    // Memory operations.
    uint32_t effAddr = 0;     ///< architectural effective address
    uint32_t baseVal = 0;     ///< base register value at execute
    int32_t offsetVal = 0;    ///< constant or index-register value
    bool offsetFromReg = false;

    // Control flow.
    bool taken = false;       ///< control transfer changed the PC
    uint32_t nextPc = 0;      ///< PC of the following instruction
};

/** Architectural-state executor. */
class Emulator
{
  public:
    /**
     * @param prog linked program (panics if not linked).
     * @param mem simulated memory with text+data already loaded.
     * @param img link results (gp value, entry point).
     * @param initial_sp startup stack pointer (from StackPolicy).
     */
    Emulator(const Program &prog, Memory &mem, const LinkedImage &img,
             uint32_t initial_sp);

    /**
     * Execute one instruction.
     *
     * @param rec filled with the execution record (may be null).
     * @retval false when the program has halted (no instruction ran).
     */
    bool step(ExecRecord *rec);

    /** Run to completion (or @p max_insts), discarding records. */
    uint64_t run(uint64_t max_insts = 0);

    /**
     * Consumer of the functional-warming traffic produced by runWarm()
     * during sampled-simulation fast-forward: instruction-block
     * fetches, control transfers and data accesses, in retirement
     * order.
     */
    class WarmSink
    {
      public:
        virtual ~WarmSink() = default;
        /** First fetch from a new instruction block. */
        virtual void warmFetch(uint32_t pc) = 0;
        /** Retired control transfer. */
        virtual void warmControl(uint32_t pc, bool taken,
                                 uint32_t next_pc) = 0;
        /** Retired data access. */
        virtual void warmData(uint32_t addr, bool is_store) = 0;
    };

    /**
     * Run up to @p max_insts instructions, reporting warming traffic
     * to @p sink without materializing per-instruction ExecRecords
     * (the sampled-simulation fast-forward hot loop). warmFetch fires
     * once per transition between instruction blocks of 2^@p
     * iblock_bits bytes; a retiring HALT is counted and fetch-warmed
     * but reported as neither control nor data traffic.
     *
     * @return the number of instructions retired.
     */
    uint64_t runWarm(uint64_t max_insts, unsigned iblock_bits,
                     WarmSink &sink);

    /** True once HALT has executed. */
    bool halted() const { return halted_; }

    /**
     * Process-wide default dispatch engine for Emulators constructed
     * afterwards (the CLI's --engine= flag). Like the debug-flag set,
     * this is a mutable global: set it before concurrent Machines start
     * and do not change it underneath them (see sim/machine.hh).
     */
    static void setDefaultEngine(EmuEngine e);
    static EmuEngine defaultEngine();

    /** True when this build supports computed-goto dispatch. */
    static bool threadedDispatchAvailable();

    /** Override the dispatch engine for this instance. */
    void setEngine(EmuEngine e) { engine_ = e; }

    /**
     * Effective dispatch engine: the requested one, degraded to Switch
     * when the build has no computed-goto support.
     */
    EmuEngine engine() const
    {
        return FACSIM_HAS_COMPUTED_GOTO ? engine_
                                        : EmuEngine::Switch;
    }

    /** Cumulative translation-layer counters (survive invalidation). */
    const EmuTranslationStats &translationStats() const { return tstats_; }

    /**
     * Drop every translated block (retranslated lazily on next use).
     * Must be called whenever state the translation could have baked in
     * changes under the engine — today that is checkpoint restore and
     * workload-image reset (loadState() calls this itself). Blocks only
     * ever encode the immutable linked text, so this is defensive, but
     * it keeps the invalidation rule simple: derived state never
     * outlives an architectural-state swap.
     */
    void invalidateBlockCache();

    /** Dynamic instruction count so far. */
    uint64_t instCount() const { return icount; }

    /** Current PC. */
    uint32_t pc() const { return pc_; }

    /** Integer register value. */
    uint32_t intReg(unsigned r) const { return regs[r]; }
    /** Set an integer register (test hook / startup). */
    void setIntReg(unsigned r, uint32_t v);
    /** FP register value. */
    double fpReg(unsigned r) const { return fregs[r]; }
    /** Set an FP register. */
    void setFpReg(unsigned r, double v) { fregs[r] = v; }

    /** FP condition-code flag (set by C.cond.D compares). */
    bool fpccFlag() const { return fpcc; }

    /** The memory this CPU executes against. */
    Memory &memory() { return mem_; }

    /**
     * Serialize the architectural register state (integer/FP registers,
     * FP condition code, PC, halt flag, instruction count). Memory is
     * serialized separately by the owner (it is shared state).
     */
    void saveState(ser::Writer &w) const;

    /** Restore state saved by saveState (same program required). */
    void loadState(ser::Reader &r);

  private:
    /**
     * Core of step()/runWarm(). WithRec fills *rec with the execution
     * record; WithWarm reports warming traffic to *sink. Both compile
     * out entirely when false.
     */
    template <bool WithRec, bool WithWarm>
    bool stepImpl(ExecRecord *rec, WarmSink *sink);

    [[noreturn]] void fetchFault(uint32_t pc) const;

    /**
     * Integer writes whose architectural destination is $zero are
     * redirected at translation time to this extra register slot, so
     * block handlers write unconditionally (no per-write zero check)
     * while regs[0] stays 0. Reads always use real indices.
     */
    static constexpr unsigned zeroSinkReg = numIntRegs;

    /** One buffered data access awaiting a batched warm flush. */
    struct EmuDataTouch
    {
        uint32_t addr;
        uint32_t isStore;
    };

    /** Per-runWarm functional-warming state threaded through blocks. */
    struct WarmCtx
    {
        WarmSink *sink;
        unsigned shift;       ///< iblock_bits
        uint32_t prevIBlock;  ///< last instruction block fetch-warmed
    };

    /** Block for @p pc from the cache, translating on miss (counted). */
    EmuBlock *acquireBlock(uint32_t pc);
    /** Decode the basic block starting at @p pc (= index @p idx). */
    EmuBlock *translateBlock(uint32_t pc, uint32_t idx);
    /** Translate one instruction into a handler record. */
    EmuOpRec translateInst(const Inst &in, uint32_t pc, EmuBlock &blk) const;
    /** Resolve computed-goto handler addresses for @p blk's records. */
    void bindBlock(EmuBlock &blk);

    /**
     * Block-dispatch loops (computed goto / portable switch). WithWarm
     * compiles in the data-touch buffering and per-block warm flush.
     * max_insts = 0 means unbounded; a block that would overrun the
     * bound falls back to runScalar for the exact tail.
     */
    template <bool WithWarm>
    uint64_t runBlocksThreaded(uint64_t max_insts, WarmCtx *wc);
    template <bool WithWarm>
    uint64_t runBlocksSwitch(uint64_t max_insts, WarmCtx *wc);

    /** Exact per-instruction fallback (bound tails). */
    uint64_t runScalar(uint64_t n, WarmCtx *wc);

    /** Deliver one executed block's batched warming traffic. */
    void flushWarm(const EmuBlock &blk, EmuExit exit_kind, uint32_t next_pc,
                   unsigned dn, WarmCtx *wc);

    static EmuEngine s_defaultEngine;

    const Program &prog_;
    /**
     * Predecoded dense execution array: the program's decoded Inst
     * vector, cached as a raw base pointer so the fetch path is one
     * shift + bounds check instead of re-resolving fetchIndex(pc)
     * through Program per instruction. Valid for the Emulator's
     * lifetime (the Program is linked and immutable once execution
     * starts).
     */
    const Inst *code_ = nullptr;
    uint32_t numInsts_ = 0;
    Memory &mem_;
    /**
     * Architectural integer registers plus the zero-sink slot
     * (zeroSinkReg); only the first numIntRegs entries are
     * architectural state (serialized, visible through intReg()).
     */
    std::array<uint32_t, numIntRegs + 1> regs{};
    std::array<double, numFpRegs> fregs{};
    bool fpcc = false;
    uint32_t pc_;
    bool halted_ = false;
    uint64_t icount = 0;

    EmuEngine engine_;
    EmuTranslationStats tstats_;
    /** Computed-goto handler table, captured on first threaded run. */
    const void *const *labels_ = nullptr;
    /** Dense block cache: instruction index -> block starting there. */
    std::vector<EmuBlock *> blockMap_;
    std::vector<std::unique_ptr<EmuBlock>> blocks_;
    /** Data-touch accumulator for the batched warm flush. */
    std::array<EmuDataTouch, emuMaxBlockOps> dbuf_{};
};

} // namespace facsim

#endif // FACSIM_CPU_EMULATOR_HH
