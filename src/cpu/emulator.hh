/**
 * @file
 * Functional emulator for the extended MIPS-like ISA. It is the golden
 * model for the timing pipeline (which consumes its dynamic instruction
 * stream) and the engine behind the reference-behaviour profiler used for
 * Tables 1/3/4 and Figure 3.
 */

#ifndef FACSIM_CPU_EMULATOR_HH
#define FACSIM_CPU_EMULATOR_HH

#include <array>
#include <cstdint>

#include "asm/program.hh"
#include "isa/inst.hh"
#include "link/linker.hh"
#include "mem/memory.hh"

namespace facsim
{

/**
 * Everything the timing model needs to know about one executed
 * instruction: the decoded op, its effective address and the operand
 * values that feed the fast-address-calculation predictor, and the
 * resolved control-flow outcome.
 */
struct ExecRecord
{
    uint32_t pc = 0;
    Inst inst;

    // Memory operations.
    uint32_t effAddr = 0;     ///< architectural effective address
    uint32_t baseVal = 0;     ///< base register value at execute
    int32_t offsetVal = 0;    ///< constant or index-register value
    bool offsetFromReg = false;

    // Control flow.
    bool taken = false;       ///< control transfer changed the PC
    uint32_t nextPc = 0;      ///< PC of the following instruction
};

/** Architectural-state executor. */
class Emulator
{
  public:
    /**
     * @param prog linked program (panics if not linked).
     * @param mem simulated memory with text+data already loaded.
     * @param img link results (gp value, entry point).
     * @param initial_sp startup stack pointer (from StackPolicy).
     */
    Emulator(const Program &prog, Memory &mem, const LinkedImage &img,
             uint32_t initial_sp);

    /**
     * Execute one instruction.
     *
     * @param rec filled with the execution record (may be null).
     * @retval false when the program has halted (no instruction ran).
     */
    bool step(ExecRecord *rec);

    /** Run to completion (or @p max_insts), discarding records. */
    uint64_t run(uint64_t max_insts = 0);

    /** True once HALT has executed. */
    bool halted() const { return halted_; }

    /** Dynamic instruction count so far. */
    uint64_t instCount() const { return icount; }

    /** Current PC. */
    uint32_t pc() const { return pc_; }

    /** Integer register value. */
    uint32_t intReg(unsigned r) const { return regs[r]; }
    /** Set an integer register (test hook / startup). */
    void setIntReg(unsigned r, uint32_t v);
    /** FP register value. */
    double fpReg(unsigned r) const { return fregs[r]; }
    /** Set an FP register. */
    void setFpReg(unsigned r, double v) { fregs[r] = v; }

    /** FP condition-code flag (set by C.cond.D compares). */
    bool fpccFlag() const { return fpcc; }

    /** The memory this CPU executes against. */
    Memory &memory() { return mem_; }

  private:
    /** Core of step(); WithRec elides all ExecRecord bookkeeping. */
    template <bool WithRec>
    bool stepImpl(ExecRecord *rec);

    [[noreturn]] void fetchFault(uint32_t pc) const;

    const Program &prog_;
    /**
     * Predecoded dense execution array: the program's decoded Inst
     * vector, cached as a raw base pointer so the fetch path is one
     * shift + bounds check instead of re-resolving fetchIndex(pc)
     * through Program per instruction. Valid for the Emulator's
     * lifetime (the Program is linked and immutable once execution
     * starts).
     */
    const Inst *code_ = nullptr;
    uint32_t numInsts_ = 0;
    Memory &mem_;
    std::array<uint32_t, numIntRegs> regs{};
    std::array<double, numFpRegs> fregs{};
    bool fpcc = false;
    uint32_t pc_;
    bool halted_ = false;
    uint64_t icount = 0;
};

} // namespace facsim

#endif // FACSIM_CPU_EMULATOR_HH
