/**
 * @file
 * Translated-block data model for the threaded-code emulator core
 * (cpu/emulator.hh). The predecoded instruction stream is translated
 * once, lazily, into *basic blocks* of pre-bound handler records: per
 * instruction, the operand register indices, the immediate, the
 * memory addressing mode and (for the computed-goto engine) the
 * handler's label address are all resolved at translation time, so the
 * dispatch loop does no per-instruction decoding, no bounds checking
 * and no PC arithmetic. Blocks chain to their fall-through and
 * direct-target successors ("superblocks"), so straight-line code and
 * hot loops run without even a block-cache lookup between blocks.
 *
 * See docs/INTERNALS.md ("Threaded emulator core") for the dispatch
 * selection, the invalidation rules and the batched-warmup argument.
 */

#ifndef FACSIM_CPU_EMU_BLOCK_HH
#define FACSIM_CPU_EMU_BLOCK_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"

/**
 * Set by CMake (FACSIM_THREADED_DISPATCH feature test) when the
 * compiler supports the GNU labels-as-values extension. When 0, the
 * threaded engine silently degrades to the portable switch engine.
 */
#ifndef FACSIM_HAS_COMPUTED_GOTO
#define FACSIM_HAS_COMPUTED_GOTO 0
#endif

namespace facsim
{

/** How the emulator dispatches translated blocks. */
enum class EmuEngine : uint8_t
{
    Switch,    ///< portable: switch over the handler kind per record
    Threaded,  ///< computed-goto direct threading (GCC/Clang)
};

/** Human-readable engine name ("switch" / "threaded"). */
const char *emuEngineName(EmuEngine e);

/** Translation-layer counters (published as "emu.*" registry stats). */
struct EmuTranslationStats
{
    /** Basic blocks decoded into handler records. */
    uint64_t blocksTranslated = 0;
    /** Block-cache lookups that found an existing block. */
    uint64_t blockCacheHits = 0;
    /** Block-cache lookups that had to translate. */
    uint64_t blockCacheMisses = 0;
    /** Successor pointers bound (fall-through or direct-target). */
    uint64_t superblockChains = 0;
};

/**
 * Handler kinds, one per specialized handler. Memory operations are
 * specialized per addressing mode (_RC = base+constant, _RR =
 * base+index-register, _PI = post-increment) so the mode is resolved
 * at translation time, not per execution. ENDBLOCK is the synthetic
 * terminator appended to blocks that end by size cap (or by running
 * off the end of text) rather than at a control transfer.
 *
 * The X-macro keeps the enum and the computed-goto label table in the
 * dispatch loops structurally in sync (same order, same names).
 */
#define FACSIM_EMU_KINDS(X)                                                  \
    X(NOP) X(HALT)                                                           \
    X(ADD) X(SUB) X(AND) X(OR) X(XOR) X(NOR) X(SLT) X(SLTU)                  \
    X(MUL) X(DIV) X(REM)                                                     \
    X(SLL) X(SRL) X(SRA) X(SLLV) X(SRLV) X(SRAV)                             \
    X(ADDI) X(ANDI) X(ORI) X(XORI) X(SLTI) X(SLTIU) X(LUI)                   \
    X(LB_RC) X(LB_RR) X(LB_PI)                                               \
    X(LBU_RC) X(LBU_RR) X(LBU_PI)                                            \
    X(LH_RC) X(LH_RR) X(LH_PI)                                               \
    X(LHU_RC) X(LHU_RR) X(LHU_PI)                                            \
    X(LW_RC) X(LW_RR) X(LW_PI)                                               \
    X(SB_RC) X(SB_RR) X(SB_PI)                                               \
    X(SH_RC) X(SH_RR) X(SH_PI)                                               \
    X(SW_RC) X(SW_RR) X(SW_PI)                                               \
    X(LWC1_RC) X(LWC1_RR) X(LWC1_PI)                                         \
    X(LDC1_RC) X(LDC1_RR) X(LDC1_PI)                                         \
    X(SWC1_RC) X(SWC1_RR) X(SWC1_PI)                                         \
    X(SDC1_RC) X(SDC1_RR) X(SDC1_PI)                                         \
    X(BEQ) X(BNE) X(BLEZ) X(BGTZ) X(BLTZ) X(BGEZ) X(BC1T) X(BC1F)            \
    X(J) X(JAL) X(JR) X(JALR)                                                \
    X(ADD_D) X(SUB_D) X(MUL_D) X(DIV_D) X(SQRT_D) X(ABS_D) X(NEG_D)          \
    X(MOV_D) X(CVT_D_W) X(CVT_W_D) X(C_EQ_D) X(C_LT_D) X(C_LE_D)             \
    X(MTC1) X(MFC1)                                                          \
    X(ENDBLOCK)

enum class EmuKind : uint8_t
{
#define FACSIM_EMU_KIND_ENUM(k) k,
    FACSIM_EMU_KINDS(FACSIM_EMU_KIND_ENUM)
#undef FACSIM_EMU_KIND_ENUM
    NumKinds
};

/**
 * One pre-bound handler record. Field meanings depend on the kind:
 *
 *  - ALU reg/shift:  a = dest, b/c = sources (a redirected to the
 *                    zero-sink slot when the architectural dest is $0)
 *  - ALU imm / LUI:  a = dest, b = source, imm = immediate
 *  - memory:         a = data register (int-load dests redirected),
 *                    b = base, c = index register (_RR) or the
 *                    redirected base writeback target (_PI),
 *                    imm = offset / post-increment stride,
 *                    aux = instruction PC (alignment-fault message)
 *  - branches:       b/c = comparands (target is the block's takenPc)
 *  - JAL/JALR:       a = link register, imm = link value (PC+4)
 *  - JR/JALR:        b = target register
 *  - FP:             a/b/c = FP register indices
 *
 * `handler` is the computed-goto label address, bound lazily the first
 * time the threaded engine runs (the switch engine dispatches on
 * `kind` and ignores it). `op` is kept only for fault messages.
 */
struct EmuOpRec
{
    const void *handler = nullptr;
    int32_t imm = 0;
    uint32_t aux = 0;
    EmuKind kind = EmuKind::NOP;
    uint8_t a = 0;
    uint8_t b = 0;
    uint8_t c = 0;
    Op op = Op::NOP;
};

/** Translation cap: longest straight-line run decoded into one block. */
constexpr unsigned emuMaxBlockOps = 64;

/** How a block's execution ended (drives chaining and warm batching). */
enum class EmuExit : uint8_t
{
    Fall,        ///< size-capped block fell through (no control transfer)
    BrNotTaken,  ///< terminal conditional branch, not taken
    BrTaken,     ///< terminal conditional branch, taken
    Jump,        ///< direct jump (J/JAL)
    Indirect,    ///< register-indirect jump (JR/JALR)
    Halt,        ///< HALT retired
};

/**
 * A translated basic block: `numOps` real instructions starting at
 * `startPc`, ending at a control transfer, HALT, the emuMaxBlockOps
 * cap or the end of text. Cap-ended blocks carry one extra synthetic
 * ENDBLOCK record so dispatch loops never test a loop counter.
 *
 * `fall` / `taken` are the superblock chain pointers: bound lazily to
 * the successor block the first time the edge is followed, so hot
 * paths run block-to-block without a cache lookup. They point into the
 * owning Emulator's block list and die with it (invalidateBlockCache
 * frees every block, so no dangling chains can survive).
 */
struct EmuBlock
{
    uint32_t startPc = 0;
    uint32_t numOps = 0;
    uint32_t fallPc = 0;   ///< startPc + 4*numOps
    uint32_t takenPc = 0;  ///< direct branch/jump target (else 0)
    bool bound = false;    ///< handler pointers resolved (threaded)
    EmuBlock *fall = nullptr;
    EmuBlock *taken = nullptr;
    std::vector<EmuOpRec> ops;
};

} // namespace facsim

#endif // FACSIM_CPU_EMU_BLOCK_HH
