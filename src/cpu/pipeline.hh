/**
 * @file
 * Cycle-level timing model of the paper's baseline superscalar (Table 5)
 * and its fast-address-calculation extension (Section 5.5).
 *
 * Microarchitecture modelled:
 *  - 4-wide fetch of any contiguous group, BTB-directed, 16 KB I-cache;
 *  - in-order issue of up to 4 ops/cycle, out-of-order completion via a
 *    register scoreboard (WAW hazards stall issue);
 *  - functional units with the Table 5 latencies, divides unpipelined;
 *  - traditional 5-stage timing: ALU results ready after EX (1 cycle);
 *    a non-speculative load computes its address in EX and accesses the
 *    data cache in MEM — the 2-cycle load latency of Figure 1;
 *  - dual-read-ported, write-back, non-blocking 16 KB data cache with a
 *    6-cycle miss latency and a 16-entry non-merging store buffer that
 *    retires to the cache on cycles with no load traffic;
 *  - 2-cycle branch misprediction penalty.
 *
 * With fast address calculation enabled, loads and stores speculatively
 * access the cache in EX using the predicted address (if a read port is
 * free); a misprediction re-executes the access in MEM the next cycle, and
 * memory operations issued in the cycle after a misprediction defer their
 * access to MEM — except that a load may speculate immediately after a
 * misspeculated load. Stores always execute speculatively into the store
 * buffer, whose entry is patched when a store's address was mispredicted.
 *
 * The model is trace-driven from the functional Emulator: the timing core
 * consumes the architecturally-correct dynamic instruction stream
 * (register values at EX equal architectural values because issue is
 * in-order), and wrong-path fetch is modelled as a fetch-redirect bubble
 * without cache pollution.
 */

#ifndef FACSIM_CPU_PIPELINE_HH
#define FACSIM_CPU_PIPELINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "branch/btb.hh"
#include "cache/cache.hh"
#include "cache/store_buffer.hh"
#include "core/fast_addr_calc.hh"
#include "cpu/emulator.hh"
#include "cpu/load_predictor.hh"
#include "mem/hierarchy/hierarchy.hh"
#include "obs/ring.hh"
#include "obs/trace.hh"

namespace facsim
{

/** Pipeline configuration; defaults reproduce the paper's Table 5. */
struct PipelineConfig
{
    unsigned fetchWidth = 4;
    unsigned issueWidth = 4;
    unsigned fetchBufferSize = 16;

    CacheConfig icache{16 * 1024, 32, 1, 6};
    CacheConfig dcache{16 * 1024, 32, 1, 6};

    /**
     * What sits below (and around) the L1 data cache. The default flat
     * hierarchy charges `dcache.missLatency` per miss — the paper's
     * machine, bit-identical to the pre-hierarchy model. See
     * `mem/hierarchy/hierarchy.hh` for the L2/MSHR/DRAM parameters and
     * `modernHierarchy()` in sim/config.hh for the deeper preset.
     */
    HierarchyConfig hierarchy{};

    unsigned btbEntries = 1024;
    unsigned branchPenalty = 2;

    unsigned storeBufferEntries = 16;
    unsigned maxLoadsPerCycle = 2;   ///< data-cache read ports
    unsigned maxStoresPerCycle = 1;

    unsigned numIntAlus = 4;
    unsigned numMemUnits = 2;
    unsigned numFpAdders = 2;

    // Result latencies in cycles ("total"); divides also occupy their
    // unit for the full latency ("issue" interval).
    unsigned intAluLat = 1;
    unsigned intMulLat = 3;
    unsigned intDivLat = 12;
    unsigned fpAddLat = 2;
    unsigned fpMulLat = 4;
    unsigned fpDivLat = 12;
    unsigned fpSqrtLat = 12;

    // --- fast address calculation ---------------------------------------
    bool facEnabled = false;
    FacConfig fac;
    /** Speculate stores into the store buffer (Section 3.1 discussion). */
    bool speculateStores = true;
    /**
     * Conservative memory disambiguation: stall a load whose block
     * overlaps a buffered store until that store retires (the default
     * models free store-to-load forwarding instead, which is what the
     * paper's in-order access stream implies).
     */
    bool loadsStallOnStoreConflict = false;

    /**
     * Table-based predictor zoo (PC-indexed stride source, way
     * memoization); all off by default, leaving FAC behaviour
     * bit-identical to the pre-zoo model. Way memoization requires
     * facEnabled and a non-perfect data cache; the stride source is
     * independent of facEnabled.
     */
    PredictorConfig pred;

    // --- idealisations for the Figure 2 potential study -----------------
    bool oneCycleLoads = false;   ///< loads skip the address-calc cycle
    bool perfectDCache = false;   ///< all data accesses hit
    bool perfectICache = false;   ///< all fetches hit

    /**
     * AGI pipeline organisation (Jouppi's MultiTitan / the TFP, compared
     * by Golden & Mudge — paper Section 6): a dedicated address-
     * generation stage, with ALU execution pushed down to the cache-
     * access stage. Removes the load-use hazard but introduces a 1-cycle
     * address-use hazard (ALU result feeding a memory op's address) and
     * lengthens the branch misprediction penalty by one cycle. Mutually
     * exclusive with facEnabled and oneCycleLoads.
     */
    bool agiOrganization = false;
};

/** Counters produced by one pipeline run. */
struct PipeStats
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    uint64_t icacheAccesses = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheAccesses = 0;
    uint64_t dcacheMisses = 0;

    uint64_t btbLookups = 0;
    uint64_t btbMispredicts = 0;

    uint64_t loadsSpeculated = 0;
    uint64_t loadSpecFailures = 0;
    uint64_t storesSpeculated = 0;
    uint64_t storeSpecFailures = 0;
    /** Mispredicted speculative accesses actually performed (Table 6). */
    uint64_t extraAccesses = 0;

    /**
     * @{ @name Predictor-zoo counters
     * Stride-sourced speculation is a subset of loadsSpeculated /
     * storesSpeculated (the shared speculative-access path); recovery
     * cycles count the MEM-stage replay each mispredict or stale
     * memoized way costs; way-memo counters are loads-only.
     */
    uint64_t strideSpeculated = 0;      ///< speculations sourced by stride
    uint64_t strideSpecFailures = 0;    ///< ... that mispredicted
    uint64_t predRecoveryCycles = 0;    ///< MEM replays (all predictors)
    uint64_t wayMemoTagReadsSaved = 0;  ///< fresh memo: tag read skipped
    uint64_t wayMemoStale = 0;          ///< stale memo: replayed late
    /** @} */

    uint64_t storeBufferFullStalls = 0;

    /**
     * @{ @name Issue-stall attribution
     * Cycles in which the *first* issue slot could not issue, by cause
     * (in-order head blocking makes the head's reason the cycle's
     * reason). Cycles with at least one issue are not counted here.
     */
    uint64_t stallFetch = 0;       ///< no fetched instruction was ready
    uint64_t stallData = 0;        ///< source operands / WAW on dests
    uint64_t stallStructural = 0;  ///< functional unit or cache port
    uint64_t stallStoreBuffer = 0; ///< store buffer full
    /** @} */

    double ipc() const
    {
        return cycles ? static_cast<double>(insts) / cycles : 0.0;
    }
    double icacheMissRatio() const
    {
        return icacheAccesses
            ? static_cast<double>(icacheMisses) / icacheAccesses : 0.0;
    }
    double dcacheMissRatio() const
    {
        return dcacheAccesses
            ? static_cast<double>(dcacheMisses) / dcacheAccesses : 0.0;
    }
    /** Table 6 metric: extra accesses as a fraction of references. */
    double bandwidthOverhead() const
    {
        uint64_t refs = loads + stores;
        return refs ? static_cast<double>(extraAccesses) / refs : 0.0;
    }
    /** Guarded: stride mispredicts over stride-sourced attempts. */
    double strideFailRate() const
    {
        return strideSpeculated
            ? static_cast<double>(strideSpecFailures) / strideSpeculated
            : 0.0;
    }
    /** Guarded: all mispredicts over all speculative attempts. */
    double predFailRate() const
    {
        uint64_t attempts = loadsSpeculated + storesSpeculated;
        return attempts
            ? static_cast<double>(loadSpecFailures + storeSpecFailures) /
                  attempts
            : 0.0;
    }
};

/** Trace-driven superscalar timing simulator. */
class Pipeline
{
  public:
    /**
     * @param config microarchitecture parameters.
     * @param emu functional CPU supplying the dynamic stream (not owned;
     *        must be freshly constructed/positioned at the program start).
     */
    Pipeline(const PipelineConfig &config, Emulator &emu);
    ~Pipeline();

    /**
     * Simulate until the program halts (or @p max_insts issue).
     * Resumable: calling run() again continues from where the previous
     * call stopped.
     * @return the accumulated statistics (also via stats()).
     */
    PipeStats run(uint64_t max_insts = 0);

    /**
     * Sampled-simulation fast-forward: consume up to @p n instructions
     * from the functional emulator with *functional warming* — I-cache,
     * BTB and the data hierarchy (D-cache tags, L2, TLB) observe the
     * stream through their counter-free warm() interfaces, so the
     * large-structure state stays accurate across skipped intervals while
     * measured-window statistics stay unpolluted. The cycle counter
     * does not advance. If the program's HALT is consumed here the
     * pipeline is marked done.
     *
     * @return instructions actually consumed (< n at end of trace).
     */
    uint64_t fastForward(uint64_t n);

    /**
     * Drain the in-flight state after a measurement window: issue
     * everything already fetched, retire the store buffer and apply
     * pending store patches (fetch inhibited), then advance the clock
     * past every busy resource (scoreboards, functional units, MSHR
     * fills, writeback drains, the DRAM channel). On return the
     * machine is quiescent: the next measurement window starts with
     * empty queues and no timing state leaking across the gap.
     */
    void drain();

    /** True once the program's HALT has been consumed. */
    bool done() const { return halted; }

    /** Current simulation cycle. */
    uint64_t currentCycle() const { return cycle; }

    /** Instructions consumed by fastForward() (not in stats().insts). */
    uint64_t fastForwardedInsts() const { return ffInsts; }

    /** The configuration this pipeline was built with. */
    const PipelineConfig &config() const { return cfg; }

    /** Statistics of the last/ongoing run. */
    const PipeStats &stats() const { return st; }

    /**
     * Serialize the complete timing state: statistics, clocks, the
     * fetch buffer and pending store patches, scoreboards, functional
     * units, read-port reservations, I-cache/BTB/store-buffer state and
     * the whole data hierarchy. All in-flight completion cycles are
     * stored as absolute cycle numbers; the cycle counter itself is
     * saved, so restore continues bit-identically with no drain needed.
     * The Emulator/Memory are serialized separately by the owner.
     */
    void saveState(ser::Writer &w) const;

    /** Restore state saved by saveState (same config required). */
    void loadState(ser::Reader &r);

    /**
     * Serialize only the functionally-warmed large structures — the
     * I-cache, the data hierarchy (D-cache tags, L2, TLB) and the BTB.
     * This is the live-point library payload (sim/lvpt.hh): it is valid
     * only at a quiescent point with no detailed cycles in flight
     * (fresh pipeline or post-drain(), empty fetch buffer and store
     * buffer), which library creation guarantees by only ever calling
     * fastForward(). Statistics, clocks and in-flight state are NOT
     * included; a restore target must be a freshly constructed pipeline
     * with matching structure geometry (see warmStateFingerprint()).
     */
    void saveWarmState(ser::Writer &w) const;

    /** Restore structures saved by saveWarmState (fresh pipeline). */
    void loadWarmState(ser::Reader &r);

    /** Per-issue observer event. */
    struct IssueEvent
    {
        uint64_t cycle;          ///< issue (EX-entry) cycle
        ExecRecord rec;          ///< the instruction issued
        bool speculated = false; ///< speculative cache access (any source)
        bool mispredicted = false; ///< address verify fired
        /** PredSource of the speculation (None when !speculated). */
        uint8_t predSource = 0;
        /** A memoized way was consulted for this load's access. */
        bool wayMemoUsed = false;
        /** The memoized way was stale: late verify forced a replay. */
        bool wayMemoStale = false;
    };

    /**
     * Install an observer invoked at every instruction issue — the hook
     * behind pipeline visualisation and the structural property tests.
     */
    void
    onIssue(std::function<void(const IssueEvent &)> fn)
    {
        issueHook = std::move(fn);
    }

    /**
     * Install an observer invoked when a store retires from the store
     * buffer into the data cache, with its sequence number (dynamic
     * store index, from 0) and the address written. Used by the
     * differential co-simulation to check FIFO retirement order and
     * that patched (mispredicted) addresses reached the cache.
     */
    void
    onStoreRetire(std::function<void(uint64_t, uint32_t)> fn)
    {
        storeRetireHook = std::move(fn);
    }

    /**
     * Attach a per-instruction lifecycle trace sink (nullptr detaches;
     * not owned — must outlive the run). Only dynamic instructions in
     * [@p start, @p start + @p count) are reported. The pipeline checks
     * one pointer per issued instruction, so detached tracing is free.
     * Trace/ring progress is not checkpointed: a restored run restarts
     * its dynamic-sequence numbering from the checkpoint's counter but
     * needs its sink re-attached.
     */
    void
    setTrace(obs::TraceSink *sink, uint64_t start = 0,
             uint64_t count = UINT64_MAX)
    {
        trace_ = sink;
        traceStart_ = start;
        traceCount_ = count;
    }

    /**
     * Retain the last @p capacity issued instructions in a history ring
     * and install this thread's panic-context hook, so panics (and the
     * co-simulation's divergence reports) carry the pipeline history.
     */
    void enableHistoryRing(size_t capacity);

    /** The history ring, or nullptr when disabled. */
    const obs::RetireRing *historyRing() const { return ring_.get(); }

    /** The store buffer (observer access for diagnostics/co-sim). */
    const StoreBuffer &storeBuffer() const { return sbuf; }

    /** The data-memory hierarchy (observer access for tests/stats). */
    const MemHierarchy &dataMem() const { return dmem; }

    /** Per-level hierarchy counters (exported with timing results). */
    HierarchyStats hierarchyStats() const { return dmem.snapshot(); }

  private:
    /** A fetched instruction waiting to issue. */
    struct FetchedInst
    {
        ExecRecord rec;
        uint64_t readyCycle = 0;   ///< earliest issue cycle
        uint64_t fetchCycle = 0;   ///< cycle the fetch happened (traces)
        bool ctlMispredicted = false;
    };

    /** Deferred store-buffer address patch. */
    struct StorePatch
    {
        uint64_t applyCycle;
        uint64_t seq;
        uint32_t addr;
    };

    /** Why the head of the fetch buffer failed to issue. */
    enum class StallReason
    {
        None, Fetch, Data, Structural, StoreBuffer
    };

    // Simulate one cycle (the body of run()); allow_fetch=false is the
    // drain mode used at sampling window boundaries.
    void stepCycle(bool allow_fetch);
    // Fetch one group into the fetch buffer; advances the trace.
    void fetchGroup();
    // Try to issue the head of the fetch buffer; true on success.
    bool tryIssue(unsigned &loads_this_cycle, unsigned &stores_this_cycle,
                  bool &store_forced_retire);

    StallReason lastStall = StallReason::None;
    // Issue-side helpers.
    bool sourcesReady(const Inst &inst) const;
    bool destsFree(const Inst &inst) const;
    unsigned fuClassOf(const Inst &inst) const;
    bool fuAvailable(unsigned cls) const;
    void takeFu(unsigned cls, unsigned busy);
    void setIntReady(int r, uint64_t t);
    void setFpReady(int r, uint64_t t);

    // Data-cache access at a given cycle; returns the completion cycle
    // plus L1-hit and service-level attribution.
    MemResult dcacheReadAt(uint64_t t, uint32_t addr);
    // Port-usage ring helpers.
    unsigned &readPortsAt(uint64_t t);
    unsigned &tagReadsAt(uint64_t t);

    // Observability slow path: history-ring push + windowed trace
    // emission for one issued instruction (done = result-ready cycle,
    // level = hierarchy level that serviced a memory access).
    void recordInst(const FetchedInst &fi, bool spec, bool spec_failed,
                    uint64_t done, uint8_t level);
    static std::string panicHistoryThunk(void *self);

    void
    notifyIssue(const FetchedInst &fi, bool spec, bool mispred,
                uint64_t done, uint8_t level, uint8_t pred_source = 0,
                bool wm_used = false, bool wm_stale = false)
    {
        // Record before the hook fires so a divergence/panic raised from
        // inside the hook sees this instruction in the history ring.
        if (trace_ || ring_)
            recordInst(fi, spec, mispred, done, level);
        if (issueHook)
            issueHook(IssueEvent{cycle, fi.rec, spec, mispred,
                                 pred_source, wm_used, wm_stale});
    }

    std::function<void(const IssueEvent &)> issueHook;
    std::function<void(uint64_t, uint32_t)> storeRetireHook;

    // Observability state (all inert unless explicitly enabled).
    obs::TraceSink *trace_ = nullptr;
    uint64_t traceStart_ = 0;
    uint64_t traceCount_ = 0;
    std::unique_ptr<obs::RetireRing> ring_;
    /** Dynamic index of the next issued instruction (trace/ring seq). */
    uint64_t dynSeq_ = 0;

    PipelineConfig cfg;
    Emulator &emu;
    Cache icache;
    MemHierarchy dmem;
    Btb btb;
    StoreBuffer sbuf;
    LoadPredictor predictor;
    PipeStats st;

    uint64_t cycle = 0;
    uint64_t fetchReadyCycle = 0;
    bool awaitingRedirect = false;
    bool traceDone = false;
    bool halted = false;
    uint64_t seqCounter = 0;
    /** Instructions consumed by fastForward (excluded from st.insts). */
    uint64_t ffInsts = 0;

    // Deadlock watchdog (no issue for 100k cycles => panic).
    uint64_t lastProgressCycle = 0;
    uint64_t lastProgressInsts = 0;

    std::deque<FetchedInst> fbuf;
    std::vector<StorePatch> patches;

    std::array<uint64_t, numIntRegs> intReady{};
    std::array<uint64_t, numFpRegs> fpReady{};
    uint64_t fpccReady = 0;

    // Functional units: next-free cycle per unit, grouped by class.
    static constexpr unsigned fuIntAlu = 0;
    static constexpr unsigned fuMem = 1;
    static constexpr unsigned fuFpAdd = 2;
    static constexpr unsigned fuIntMulDiv = 3;
    static constexpr unsigned fuFpMulDiv = 4;
    std::array<std::vector<uint64_t>, 5> fus;

    // Read-port usage for a short window of cycles, plus the parallel
    // tag-read count: every load port use reads the L1 tag array too,
    // *except* a fresh memoized way. Store-buffer retirement keys off
    // the tag reads (identical to read ports when way memo is off).
    static constexpr unsigned portWindow = 8;
    std::array<unsigned, portWindow> readPorts{};
    std::array<unsigned, portWindow> tagReads{};

    // Section 5.5 post-misprediction issue rule.
    uint64_t lastMispredictCycle = UINT64_MAX - 8;
    bool lastMispredictWasLoad = false;
};

} // namespace facsim

#endif // FACSIM_CPU_PIPELINE_HH
