/**
 * @file
 * Translation layer of the threaded-code emulator core: decodes the
 * predecoded instruction stream into basic blocks of pre-bound handler
 * records (cpu/emu_block.hh) and maintains the block cache. The
 * dispatch loops that execute the blocks live in cpu/emulator.cc.
 */

#include "cpu/emulator.hh"

#include "obs/prof.hh"
#include "util/logging.hh"

namespace facsim
{

EmuEngine Emulator::s_defaultEngine = EmuEngine::Threaded;

const char *
emuEngineName(EmuEngine e)
{
    return e == EmuEngine::Threaded ? "threaded" : "switch";
}

void
Emulator::setDefaultEngine(EmuEngine e)
{
    s_defaultEngine = e;
}

EmuEngine
Emulator::defaultEngine()
{
    return s_defaultEngine;
}

bool
Emulator::threadedDispatchAvailable()
{
    return FACSIM_HAS_COMPUTED_GOTO != 0;
}

void
Emulator::invalidateBlockCache()
{
    blockMap_.clear();
    blocks_.clear();
}

namespace
{

/** Map an Op whose handler kind carries the same name. */
EmuKind
simpleKind(Op op)
{
    switch (op) {
#define FACSIM_EMU_SAME(n) case Op::n: return EmuKind::n;
      FACSIM_EMU_SAME(NOP) FACSIM_EMU_SAME(HALT)
      FACSIM_EMU_SAME(ADD) FACSIM_EMU_SAME(SUB) FACSIM_EMU_SAME(AND)
      FACSIM_EMU_SAME(OR) FACSIM_EMU_SAME(XOR) FACSIM_EMU_SAME(NOR)
      FACSIM_EMU_SAME(SLT) FACSIM_EMU_SAME(SLTU)
      FACSIM_EMU_SAME(MUL) FACSIM_EMU_SAME(DIV) FACSIM_EMU_SAME(REM)
      FACSIM_EMU_SAME(SLL) FACSIM_EMU_SAME(SRL) FACSIM_EMU_SAME(SRA)
      FACSIM_EMU_SAME(SLLV) FACSIM_EMU_SAME(SRLV) FACSIM_EMU_SAME(SRAV)
      FACSIM_EMU_SAME(ADDI) FACSIM_EMU_SAME(ANDI) FACSIM_EMU_SAME(ORI)
      FACSIM_EMU_SAME(XORI) FACSIM_EMU_SAME(SLTI) FACSIM_EMU_SAME(SLTIU)
      FACSIM_EMU_SAME(LUI)
      FACSIM_EMU_SAME(BEQ) FACSIM_EMU_SAME(BNE) FACSIM_EMU_SAME(BLEZ)
      FACSIM_EMU_SAME(BGTZ) FACSIM_EMU_SAME(BLTZ) FACSIM_EMU_SAME(BGEZ)
      FACSIM_EMU_SAME(BC1T) FACSIM_EMU_SAME(BC1F)
      FACSIM_EMU_SAME(J) FACSIM_EMU_SAME(JAL)
      FACSIM_EMU_SAME(JR) FACSIM_EMU_SAME(JALR)
      FACSIM_EMU_SAME(ADD_D) FACSIM_EMU_SAME(SUB_D) FACSIM_EMU_SAME(MUL_D)
      FACSIM_EMU_SAME(DIV_D) FACSIM_EMU_SAME(SQRT_D) FACSIM_EMU_SAME(ABS_D)
      FACSIM_EMU_SAME(NEG_D) FACSIM_EMU_SAME(MOV_D)
      FACSIM_EMU_SAME(CVT_D_W) FACSIM_EMU_SAME(CVT_W_D)
      FACSIM_EMU_SAME(C_EQ_D) FACSIM_EMU_SAME(C_LT_D) FACSIM_EMU_SAME(C_LE_D)
      FACSIM_EMU_SAME(MTC1) FACSIM_EMU_SAME(MFC1)
#undef FACSIM_EMU_SAME
      default:
        panic("emulator: no handler kind for op %s", opName(op));
    }
}

/** Map a memory Op to its addressing-mode-specialized handler kind. */
EmuKind
memKind(Op op, AMode m)
{
    switch (op) {
#define FACSIM_EMU_MEMK(n)                                                  \
      case Op::n:                                                           \
        return m == AMode::RegConst ? EmuKind::n##_RC                       \
             : m == AMode::RegReg   ? EmuKind::n##_RR                       \
                                    : EmuKind::n##_PI;
      FACSIM_EMU_MEMK(LB) FACSIM_EMU_MEMK(LBU)
      FACSIM_EMU_MEMK(LH) FACSIM_EMU_MEMK(LHU) FACSIM_EMU_MEMK(LW)
      FACSIM_EMU_MEMK(SB) FACSIM_EMU_MEMK(SH) FACSIM_EMU_MEMK(SW)
      FACSIM_EMU_MEMK(LWC1) FACSIM_EMU_MEMK(LDC1)
      FACSIM_EMU_MEMK(SWC1) FACSIM_EMU_MEMK(SDC1)
#undef FACSIM_EMU_MEMK
      default:
        panic("emulator: %s is not a memory op", opName(op));
    }
}

} // namespace

EmuOpRec
Emulator::translateInst(const Inst &in, uint32_t pc, EmuBlock &blk) const
{
    // Redirect $zero destinations to the sink slot so handlers write
    // unconditionally. Source registers keep their real indices.
    const auto rz = [](uint8_t r) {
        return static_cast<uint8_t>(r == reg::zero ? zeroSinkReg : r);
    };

    EmuOpRec rec;
    rec.op = in.op;

    switch (in.op) {
      case Op::NOP:
      case Op::HALT:
        rec.kind = simpleKind(in.op);
        break;

      case Op::ADD: case Op::SUB: case Op::AND: case Op::OR: case Op::XOR:
      case Op::NOR: case Op::SLT: case Op::SLTU: case Op::MUL:
      case Op::DIV: case Op::REM:
      case Op::SLLV: case Op::SRLV: case Op::SRAV:
        rec.kind = simpleKind(in.op);
        rec.a = rz(in.rd);
        rec.b = in.rs;
        rec.c = in.rt;
        break;

      case Op::SLL: case Op::SRL: case Op::SRA:
        rec.kind = simpleKind(in.op);
        rec.a = rz(in.rd);
        rec.b = in.rs;
        rec.imm = in.imm;
        break;

      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLTI: case Op::SLTIU: case Op::LUI:
        rec.kind = simpleKind(in.op);
        rec.a = rz(in.rt);
        rec.b = in.rs;
        rec.imm = in.imm;
        break;

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
      case Op::SB: case Op::SH: case Op::SW:
      case Op::LWC1: case Op::LDC1: case Op::SWC1: case Op::SDC1:
        rec.kind = memKind(in.op, in.amode);
        // Integer load destinations get the $zero redirect; store data
        // and FP data registers are reads / FP-file indices, raw.
        rec.a = (isLoad(in.op) && !isFpMem(in.op)) ? rz(in.rt) : in.rt;
        rec.b = in.rs;
        rec.c = in.amode == AMode::RegReg ? in.rd : rz(in.rs);
        rec.imm = in.imm;
        rec.aux = pc;
        break;

      case Op::BEQ: case Op::BNE:
        rec.kind = simpleKind(in.op);
        rec.b = in.rs;
        rec.c = in.rt;
        blk.takenPc = pc + 4 + (static_cast<uint32_t>(in.imm) << 2);
        break;
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
        rec.kind = simpleKind(in.op);
        rec.b = in.rs;
        blk.takenPc = pc + 4 + (static_cast<uint32_t>(in.imm) << 2);
        break;
      case Op::BC1T: case Op::BC1F:
        rec.kind = simpleKind(in.op);
        blk.takenPc = pc + 4 + (static_cast<uint32_t>(in.imm) << 2);
        break;

      case Op::J:
        rec.kind = EmuKind::J;
        blk.takenPc = static_cast<uint32_t>(in.imm) << 2;
        break;
      case Op::JAL:
        rec.kind = EmuKind::JAL;
        rec.a = reg::ra;
        rec.imm = static_cast<int32_t>(pc + 4);
        blk.takenPc = static_cast<uint32_t>(in.imm) << 2;
        break;
      case Op::JR:
        rec.kind = EmuKind::JR;
        rec.b = in.rs;
        break;
      case Op::JALR:
        rec.kind = EmuKind::JALR;
        rec.a = rz(in.rd);
        rec.b = in.rs;
        rec.imm = static_cast<int32_t>(pc + 4);
        break;

      case Op::ADD_D: case Op::SUB_D: case Op::MUL_D: case Op::DIV_D:
        rec.kind = simpleKind(in.op);
        rec.a = in.rd;
        rec.b = in.rs;
        rec.c = in.rt;
        break;
      case Op::SQRT_D: case Op::ABS_D: case Op::NEG_D: case Op::MOV_D:
      case Op::CVT_D_W: case Op::CVT_W_D:
        rec.kind = simpleKind(in.op);
        rec.a = in.rd;
        rec.b = in.rs;
        break;
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        rec.kind = simpleKind(in.op);
        rec.b = in.rs;
        rec.c = in.rt;
        break;
      case Op::MTC1:
        rec.kind = EmuKind::MTC1;
        rec.a = in.rd;
        rec.b = in.rt;
        break;
      case Op::MFC1:
        rec.kind = EmuKind::MFC1;
        rec.a = rz(in.rd);
        rec.b = in.rs;
        break;

      default:
        panic("emulator: unimplemented op %s at pc 0x%08x",
              opName(in.op), pc);
    }
    return rec;
}

EmuBlock *
Emulator::translateBlock(uint32_t pc, uint32_t idx)
{
    FACSIM_PROF_SCOPE(BlockTranslate);
    auto owned = std::make_unique<EmuBlock>();
    EmuBlock *blk = owned.get();
    blk->startPc = pc;
    blk->ops.reserve(8);

    bool terminated = false;
    for (uint32_t i = idx;
         i < numInsts_ && blk->ops.size() < emuMaxBlockOps; ++i) {
        const Inst &in = code_[i];
        blk->ops.push_back(translateInst(in, pc + 4 * (i - idx), *blk));
        if (isControl(in.op) || in.op == Op::HALT) {
            terminated = true;
            break;
        }
    }
    blk->numOps = static_cast<uint32_t>(blk->ops.size());
    blk->fallPc = pc + 4 * blk->numOps;
    if (!terminated) {
        // Size cap or end of text: synthetic terminator so the
        // dispatch loop needs no per-record counter.
        EmuOpRec end;
        end.kind = EmuKind::ENDBLOCK;
        blk->ops.push_back(end);
    }

    blocks_.push_back(std::move(owned));
    blockMap_[idx] = blk;
    ++tstats_.blocksTranslated;
    return blk;
}

EmuBlock *
Emulator::acquireBlock(uint32_t pc)
{
    // Same validation (and fault messages) as the scalar fetch path;
    // the wraparound for pc < textBase lands in the idx bound check.
    const uint32_t idx = (pc - Program::textBase) >> 2;
    if (idx >= numInsts_ || (pc & 3) != 0) [[unlikely]]
        fetchFault(pc);
    if (blockMap_.empty())
        blockMap_.assign(numInsts_, nullptr);
    if (EmuBlock *blk = blockMap_[idx]) {
        ++tstats_.blockCacheHits;
        return blk;
    }
    ++tstats_.blockCacheMisses;
    return translateBlock(pc, idx);
}

void
Emulator::bindBlock(EmuBlock &blk)
{
    FACSIM_ASSERT(labels_ != nullptr,
                  "handler table must be captured before binding");
    for (EmuOpRec &rec : blk.ops)
        rec.handler = labels_[static_cast<unsigned>(rec.kind)];
    blk.bound = true;
}

} // namespace facsim
