/**
 * @file
 * Reference-behaviour profiler (paper Section 2). Observes the dynamic
 * instruction stream and accumulates:
 *
 *  - load/store counts and the load breakdown by addressing class
 *    (global pointer / stack pointer / general pointer) — Table 1;
 *  - cumulative offset-size distributions per class — Figure 3;
 *  - fast-address-calculation failure rates for any number of predictor
 *    configurations evaluated simultaneously — Tables 3 and 4;
 *  - data-TLB miss ratio — the Section 5.4 virtual-memory check.
 */

#ifndef FACSIM_CPU_PROFILER_HH
#define FACSIM_CPU_PROFILER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/fast_addr_calc.hh"
#include "core/ltb.hh"
#include "cpu/emulator.hh"
#include "mem/tlb.hh"

namespace facsim
{

/** Addressing classes of Section 2.1. */
enum class RefClass : uint8_t
{
    Global,   ///< base register is gp
    Stack,    ///< base register is sp or fp
    General,  ///< everything else (pointer/array dereferences)
};

/** Classify one memory access by its base register. */
RefClass classifyRef(const Inst &inst);

/**
 * Offset histogram bucket for Figure 3: bucket i (0..16) counts offsets
 * needing exactly i bits (bucket 0 = zero offsets), bucket 17 ("More")
 * counts offsets over 16 bits, bucket 18 counts negative offsets.
 */
struct OffsetHistogram
{
    static constexpr unsigned numBuckets = 19;
    static constexpr unsigned moreBucket = 17;
    static constexpr unsigned negBucket = 18;

    std::array<uint64_t, numBuckets> buckets{};
    uint64_t total = 0;

    /** Record one offset value. */
    void add(int32_t offset);

    /** Cumulative fraction of offsets needing <= @p bits bits. */
    double cumulative(unsigned bits) const;
};

/** Per-predictor-configuration failure statistics. */
struct FacProfile
{
    FacConfig config;
    uint64_t loadAttempts = 0;
    uint64_t loadFailures = 0;
    uint64_t storeAttempts = 0;
    uint64_t storeFailures = 0;
    /** Failures excluding register+register accesses ("No R+R"). */
    uint64_t loadFailuresNoRR = 0;
    uint64_t storeFailuresNoRR = 0;
    uint64_t loadsNoRR = 0;
    uint64_t storesNoRR = 0;
    /** Failure-cause breakdown (index = FacFail bit position). */
    std::array<uint64_t, 5> causeCounts{};

    double loadFailRate() const
    {
        return loadAttempts
            ? static_cast<double>(loadFailures) / loadAttempts : 0.0;
    }
    double storeFailRate() const
    {
        return storeAttempts
            ? static_cast<double>(storeFailures) / storeAttempts : 0.0;
    }
    double loadFailRateNoRR() const
    {
        return loadsNoRR
            ? static_cast<double>(loadFailuresNoRR) / loadsNoRR : 0.0;
    }
    double storeFailRateNoRR() const
    {
        return storesNoRR
            ? static_cast<double>(storeFailuresNoRR) / storesNoRR : 0.0;
    }
};

/**
 * Accuracy statistics for one load-target-buffer configuration (the
 * Section 6 related-work comparison).
 */
struct LtbProfile
{
    unsigned entries = 0;
    LtbPolicy policy = LtbPolicy::LastAddress;
    uint64_t attempts = 0;   ///< all loads+stores observed
    uint64_t correct = 0;    ///< table hit with the right address

    double failRate() const
    {
        return attempts
            ? 1.0 - static_cast<double>(correct) / attempts : 0.0;
    }
};

/** Stream profiler; feed it every ExecRecord in program order. */
class Profiler
{
  public:
    Profiler();

    /** Add a predictor configuration to evaluate; returns its index. */
    size_t addFacConfig(const FacConfig &config);

    /** Add a load-target-buffer configuration; returns its index. */
    size_t addLtbConfig(unsigned entries, LtbPolicy policy);

    /** Enable the data-TLB model (off by default; it costs time). */
    void enableTlb(unsigned entries = 64, uint32_t page_bytes = 4096);

    /** Observe one executed instruction. */
    void observe(const ExecRecord &rec);

    /** @{ @name Aggregate counters */
    uint64_t insts() const { return insts_; }
    uint64_t loads() const { return loads_; }
    uint64_t stores() const { return stores_; }
    uint64_t refs() const { return loads_ + stores_; }
    uint64_t loadsOf(RefClass c) const
    {
        return loadsByClass[static_cast<size_t>(c)];
    }
    double loadFrac(RefClass c) const
    {
        return loads_
            ? static_cast<double>(loadsOf(c)) / loads_ : 0.0;
    }
    /** @} */

    /** Offset histogram for one addressing class (loads only, as Fig 3). */
    const OffsetHistogram &offsets(RefClass c) const
    {
        return offsetHists[static_cast<size_t>(c)];
    }

    /** Results for the @p i-th predictor configuration. */
    const FacProfile &fac(size_t i) const { return facs.at(i); }
    size_t numFacConfigs() const { return facs.size(); }

    /** Results for the @p i-th LTB configuration. */
    const LtbProfile &ltb(size_t i) const { return ltbProfiles.at(i); }
    size_t numLtbConfigs() const { return ltbProfiles.size(); }

    /** TLB miss ratio (0 when the TLB is disabled). */
    double tlbMissRatio() const { return tlb ? tlb->missRatio() : 0.0; }
    /** Raw TLB probe count (0 when the TLB is disabled). */
    uint64_t tlbAccesses() const { return tlb ? tlb->accesses() : 0; }
    /** Raw TLB miss count (0 when the TLB is disabled). */
    uint64_t tlbMisses() const { return tlb ? tlb->misses() : 0; }

  private:
    uint64_t insts_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    std::array<uint64_t, 3> loadsByClass{};
    std::array<OffsetHistogram, 3> offsetHists{};

    std::vector<FacProfile> facs;
    std::vector<FastAddrCalc> calcs;

    std::vector<LtbProfile> ltbProfiles;
    std::vector<Ltb> ltbs;

    std::unique_ptr<Tlb> tlb;
};

} // namespace facsim

#endif // FACSIM_CPU_PROFILER_HH
