#include "cpu/pipeline.hh"

#include <algorithm>

#include "isa/disasm.hh"
#include "obs/debug.hh"
#include "util/logging.hh"

namespace facsim
{

Pipeline::Pipeline(const PipelineConfig &config, Emulator &emulator)
    : cfg(config), emu(emulator), icache(cfg.icache),
      dmem(cfg.dcache, cfg.hierarchy), btb(cfg.btbEntries),
      sbuf(cfg.storeBufferEntries),
      predictor(cfg.facEnabled, cfg.fac, cfg.pred)
{
    if (cfg.agiOrganization) {
        FACSIM_ASSERT(!cfg.facEnabled && !cfg.oneCycleLoads,
                      "the AGI organisation is an alternative to fast "
                      "address calculation, not a companion");
        FACSIM_ASSERT(!cfg.pred.anyEnabled(),
                      "the AGI organisation removes the load-use hazard "
                      "the predictor zoo targets; they are alternatives, "
                      "not companions");
    }
    if (cfg.pred.wayMemo) {
        FACSIM_ASSERT(cfg.facEnabled,
                      "way memoization only skips the tag read on "
                      "confident FAC hits; enable FAC to use it");
        FACSIM_ASSERT(!cfg.perfectDCache,
                      "way memoization is meaningless with a perfect "
                      "data cache (no tag array to skip)");
    }
    if (cfg.facEnabled) {
        FACSIM_ASSERT(cfg.fac.blockBits == cfg.dcache.blockBits() &&
                      cfg.fac.setBits == cfg.dcache.setBits(),
                      "FAC field widths must match the data cache "
                      "geometry (B=%u S=%u vs cache B=%u S=%u)",
                      cfg.fac.blockBits, cfg.fac.setBits,
                      cfg.dcache.blockBits(), cfg.dcache.setBits());
    }
    fus[fuIntAlu].assign(cfg.numIntAlus, 0);
    fus[fuMem].assign(cfg.numMemUnits, 0);
    fus[fuFpAdd].assign(cfg.numFpAdders, 0);
    fus[fuIntMulDiv].assign(1, 0);
    fus[fuFpMulDiv].assign(1, 0);
}

Pipeline::~Pipeline()
{
    // Release the panic hook only if this pipeline still owns it.
    clearPanicContextHook(this);
}

void
Pipeline::enableHistoryRing(size_t capacity)
{
    ring_ = std::make_unique<obs::RetireRing>(capacity);
    setPanicContextHook(&Pipeline::panicHistoryThunk, this);
}

std::string
Pipeline::panicHistoryThunk(void *self)
{
    auto *p = static_cast<Pipeline *>(self);
    return p->ring_ ? p->ring_->dump() : std::string();
}

void
Pipeline::recordInst(const FetchedInst &fi, bool spec, bool spec_failed,
                     uint64_t done, uint8_t level)
{
    uint64_t seq = dynSeq_++;
    const ExecRecord &rec = fi.rec;
    bool is_mem = isMem(rec.inst.op);
    if (ring_) {
        obs::RingEntry e;
        e.seq = seq;
        e.issueCycle = cycle;
        e.doneCycle = done;
        e.pc = rec.pc;
        e.inst = rec.inst;
        e.effAddr = rec.effAddr;
        e.isMem = is_mem;
        e.specAccess = spec && is_mem;
        e.specFailed = spec_failed;
        e.memLevel = level;
        ring_->push(e);
    }
    if (trace_ && seq >= traceStart_ && seq - traceStart_ < traceCount_) {
        obs::InstTraceRecord r;
        r.seq = seq;
        r.pc = rec.pc;
        r.text = disasm(rec.inst, rec.pc);
        r.fetchCycle = fi.fetchCycle;
        r.issueCycle = cycle;
        r.doneCycle = done;
        r.isLoad = isLoad(rec.inst.op);
        r.isStore = isStore(rec.inst.op);
        r.specAccess = spec && is_mem;
        r.specFailed = spec_failed;
        r.memLevel = level;
        trace_->instruction(r);
    }
}

unsigned &
Pipeline::readPortsAt(uint64_t t)
{
    return readPorts[t % portWindow];
}

unsigned &
Pipeline::tagReadsAt(uint64_t t)
{
    return tagReads[t % portWindow];
}

MemResult
Pipeline::dcacheReadAt(uint64_t t, uint32_t addr)
{
    ++st.dcacheAccesses;
    if (cfg.perfectDCache)
        return {t, true, memlevel::None};
    MemResult r = dmem.read(addr, t);
    if (!r.l1Hit) {
        ++st.dcacheMisses;
        FACSIM_DPRINTF(Mem, "cycle=%llu load addr=%08x L1 miss, "
                       "serviced by %s, done=%llu",
                       static_cast<unsigned long long>(t), addr,
                       obs::memLevelName(r.level),
                       static_cast<unsigned long long>(r.doneCycle));
    }
    return r;
}

void
Pipeline::setIntReady(int r, uint64_t t)
{
    if (r > 0)
        intReady[static_cast<unsigned>(r)] = t;
}

void
Pipeline::setFpReady(int r, uint64_t t)
{
    if (r >= 0)
        fpReady[static_cast<unsigned>(r)] = t;
}

unsigned
Pipeline::fuClassOf(const Inst &in) const
{
    if (isMem(in.op))
        return fuMem;
    switch (in.op) {
      case Op::MUL: case Op::DIV: case Op::REM:
        return fuIntMulDiv;
      case Op::MUL_D: case Op::DIV_D: case Op::SQRT_D:
        return fuFpMulDiv;
      case Op::ADD_D: case Op::SUB_D: case Op::ABS_D: case Op::NEG_D:
      case Op::MOV_D: case Op::CVT_D_W: case Op::CVT_W_D:
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        return fuFpAdd;
      default:
        return fuIntAlu;
    }
}

bool
Pipeline::fuAvailable(unsigned cls) const
{
    for (uint64_t t : fus[cls])
        if (t <= cycle)
            return true;
    return false;
}

void
Pipeline::takeFu(unsigned cls, unsigned busy)
{
    for (uint64_t &t : fus[cls]) {
        if (t <= cycle) {
            t = cycle + busy;
            return;
        }
    }
    panic("takeFu with no available unit in class %u", cls);
}

bool
Pipeline::sourcesReady(const Inst &in) const
{
    auto iok = [&](uint8_t r) { return intReady[r] <= cycle; };
    auto fok = [&](uint8_t r) { return fpReady[r] <= cycle; };
    // AGI address-use hazard: the address-generation stage sits one
    // stage above the ALU, so address operands must be ready a cycle
    // earlier than compute operands.
    uint64_t addr_slack = cfg.agiOrganization ? 1 : 0;
    auto iok_addr = [&](uint8_t r) {
        return intReady[r] + addr_slack <= cycle || intReady[r] == 0;
    };

    if (isMem(in.op)) {
        if (!iok_addr(in.rs))
            return false;
        if (in.amode == AMode::RegReg && !iok_addr(in.rd))
            return false;
        if (isStore(in.op))
            return isFpMem(in.op) ? fok(in.rt) : iok(in.rt);
        return true;
    }

    switch (in.op) {
      case Op::NOP: case Op::HALT: case Op::J: case Op::JAL:
      case Op::LUI:
        return true;
      case Op::BC1T: case Op::BC1F:
        return fpccReady <= cycle;
      case Op::BEQ: case Op::BNE:
        return iok(in.rs) && iok(in.rt);
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
      case Op::JR: case Op::JALR:
      case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLTI: case Op::SLTIU:
        return iok(in.rs);
      case Op::MTC1:
        return iok(in.rt);
      case Op::MFC1:
        return fok(in.rs);
      case Op::ADD_D: case Op::SUB_D: case Op::MUL_D: case Op::DIV_D:
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        return fok(in.rs) && fok(in.rt);
      case Op::SQRT_D: case Op::ABS_D: case Op::NEG_D: case Op::MOV_D:
      case Op::CVT_D_W: case Op::CVT_W_D:
        return fok(in.rs);
      default:
        // Three-source-register integer ALU operations.
        return iok(in.rs) && iok(in.rt);
    }
}

bool
Pipeline::destsFree(const Inst &in) const
{
    int d = intDest(in);
    if (d >= 0 && intReady[static_cast<unsigned>(d)] > cycle)
        return false;
    int fd = fpDest(in);
    if (fd >= 0 && fpReady[static_cast<unsigned>(fd)] > cycle)
        return false;
    if (isMem(in.op) && in.amode == AMode::PostInc &&
        intReady[in.rs] > cycle)
        return false;
    switch (in.op) {
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        return fpccReady <= cycle;
      default:
        return true;
    }
}

void
Pipeline::fetchGroup()
{
    uint64_t delay = 0;
    uint32_t prev_block = 0xffffffffu;
    const unsigned block_bits = cfg.icache.blockBits();

    for (unsigned n = 0;
         n < cfg.fetchWidth && fbuf.size() < cfg.fetchBufferSize; ++n) {
        ExecRecord rec;
        if (!emu.step(&rec)) {
            traceDone = true;
            break;
        }

        // Model instruction-cache traffic per block touched by the group.
        if (!cfg.perfectICache) {
            uint32_t block = rec.pc >> block_bits;
            if (block != prev_block) {
                prev_block = block;
                ++st.icacheAccesses;
                CacheAccess acc = icache.read(rec.pc);
                if (!acc.hit) {
                    ++st.icacheMisses;
                    delay += cfg.icache.missLatency;
                }
            }
        }

        FetchedInst fi;
        fi.rec = rec;
        fi.fetchCycle = cycle;

        if (rec.inst.op == Op::HALT) {
            fbuf.push_back(fi);
            traceDone = true;
            break;
        }

        if (isControl(rec.inst.op)) {
            BtbPrediction pr = btb.predict(rec.pc);
            ++st.btbLookups;
            bool pred_taken = isBranch(rec.inst.op) ? (pr.hit && pr.taken)
                                                    : pr.hit;
            bool mispredict;
            if (rec.taken)
                mispredict = !pred_taken || pr.target != rec.nextPc;
            else
                mispredict = pred_taken;
            fi.ctlMispredicted = mispredict;
            fbuf.push_back(fi);
            if (mispredict) {
                FACSIM_DPRINTF(Fetch, "cycle=%llu pc=%08x BTB mispredict "
                               "(taken=%d target=%08x), fetch redirect",
                               static_cast<unsigned long long>(cycle),
                               rec.pc, rec.taken ? 1 : 0, rec.nextPc);
                // The machine fetches down the wrong path until the
                // transfer resolves in EX; we model that as a fetch stall
                // released by the resolving instruction.
                awaitingRedirect = true;
                break;
            }
            if (rec.taken)
                break;  // correctly-predicted taken: group cannot continue
        } else {
            fbuf.push_back(fi);
        }
    }

    // Stamp issue-readiness on everything fetched this cycle.
    uint64_t ready = cycle + 1 + delay;
    for (auto it = fbuf.rbegin(); it != fbuf.rend(); ++it) {
        if (it->readyCycle != 0)
            break;
        it->readyCycle = ready;
    }
    fetchReadyCycle = cycle + 1 + delay;
}

bool
Pipeline::tryIssue(unsigned &loads_this_cycle, unsigned &stores_this_cycle,
                   bool &store_forced_retire)
{
    lastStall = StallReason::None;
    if (fbuf.empty()) {
        lastStall = StallReason::Fetch;
        return false;
    }
    FetchedInst &fi = fbuf.front();
    if (fi.readyCycle > cycle) {
        lastStall = StallReason::Fetch;
        return false;
    }
    const ExecRecord &rec = fi.rec;
    const Inst &in = rec.inst;

    if (in.op == Op::HALT) {
        ++st.insts;
        halted = true;
        notifyIssue(fi, false, false, cycle + 1, memlevel::None);
        fbuf.pop_front();
        return false;
    }
    if (in.op == Op::NOP) {
        ++st.insts;
        notifyIssue(fi, false, false, cycle + 1, memlevel::None);
        fbuf.pop_front();
        return true;
    }

    if (!sourcesReady(in) || !destsFree(in)) {
        lastStall = StallReason::Data;
        return false;
    }

    unsigned cls = fuClassOf(in);
    if (!fuAvailable(cls)) {
        lastStall = StallReason::Structural;
        return false;
    }

    // ---------------- loads ------------------------------------------------
    if (isLoad(in.op)) {
        if (loads_this_cycle >= cfg.maxLoadsPerCycle) {
            lastStall = StallReason::Structural;
            return false;
        }
        if (cfg.loadsStallOnStoreConflict &&
            sbuf.conflicts(rec.effAddr, cfg.dcache.blockBytes)) {
            // Conservative disambiguation: wait for the buffered store
            // to drain (retirement proceeds because this cycle then has
            // no load traffic).
            lastStall = StallReason::StoreBuffer;
            return false;
        }

        bool allow_spec = cfg.facEnabled || cfg.pred.stride;
        // Section 5.5 issue rule: memory ops issued the cycle after a
        // misprediction access the cache in MEM — unless this is a load
        // right after a misspeculated load. (The FAC R+R policy gate
        // lives inside the predictor: an unattempted prediction costs
        // nothing, exactly like allow_spec=false.)
        if (cycle == lastMispredictCycle + 1 && !lastMispredictWasLoad)
            allow_spec = false;

        bool issued_spec = false;
        bool spec_failed = false;
        bool wm_used = false;
        bool wm_stale = false;
        uint64_t data_ready = 0;
        uint8_t mem_level = memlevel::None;
        PredResult pr;

        if (allow_spec && readPortsAt(cycle) < cfg.maxLoadsPerCycle) {
            pr = predictor.predict(rec.pc, rec.baseVal, rec.offsetVal,
                                   rec.offsetFromReg, rec.effAddr);
            if (pr.attempted) {
                ++st.loadsSpeculated;
                if (pr.source == PredSource::Stride)
                    ++st.strideSpeculated;
                ++readPortsAt(cycle);
                if (pr.success) {
                    FACSIM_ASSERT(pr.predictedAddr == rec.effAddr,
                                  "predictor success with wrong address");
                    // Way memoization: a confident FAC hit may reuse the
                    // memoized way and skip the L1 tag read; the
                    // mandatory late verify against the tag state turns
                    // a stale memo into a MEM replay, never wrong data.
                    bool skip_tag = false;
                    if (cfg.pred.wayMemo &&
                        pr.source == PredSource::Fac) {
                        uint32_t block = rec.effAddr &
                            ~(cfg.dcache.blockBytes - 1);
                        int memo = predictor.memoWay(rec.pc, block);
                        if (memo >= 0) {
                            wm_used = true;
                            if (memo == dmem.l1().wayOf(rec.effAddr)) {
                                skip_tag = true;
                                ++st.wayMemoTagReadsSaved;
                            } else {
                                wm_stale = true;
                            }
                        }
                    }
                    if (!wm_stale) {
                        if (!skip_tag)
                            ++tagReadsAt(cycle);
                        MemResult mr = dcacheReadAt(cycle, rec.effAddr);
                        data_ready = mr.doneCycle;
                        mem_level = mr.level;
                    } else {
                        // The set/way data read returned the wrong line;
                        // squash and re-execute in MEM with a full tag
                        // read, like an address mispredict.
                        FACSIM_DPRINTF(FacVerify, "cycle=%llu pc=%08x "
                                       "load way-memo stale, MEM replay",
                                       static_cast<unsigned long long>(
                                           cycle), rec.pc);
                        ++st.wayMemoStale;
                        ++st.predRecoveryCycles;
                        ++st.extraAccesses;
                        ++st.dcacheAccesses;
                        ++readPortsAt(cycle + 1);
                        ++tagReadsAt(cycle + 1);
                        MemResult mr =
                            dcacheReadAt(cycle + 1, rec.effAddr);
                        data_ready = mr.doneCycle;
                        mem_level = mr.level;
                        lastMispredictCycle = cycle;
                        lastMispredictWasLoad = true;
                    }
                } else {
                    // Wasted speculative access with the wrong address
                    // (bandwidth only — the fill is squashed), then a
                    // MEM-stage re-execution next cycle.
                    FACSIM_DPRINTF(FacVerify, "cycle=%llu pc=%08x load "
                                   "%s mispredict pred=%08x actual=%08x, "
                                   "MEM replay",
                                   static_cast<unsigned long long>(cycle),
                                   rec.pc,
                                   pr.source == PredSource::Stride
                                       ? "stride" : "FAC",
                                   pr.predictedAddr, rec.effAddr);
                    ++st.loadSpecFailures;
                    if (pr.source == PredSource::Stride)
                        ++st.strideSpecFailures;
                    ++st.predRecoveryCycles;
                    ++st.extraAccesses;
                    ++st.dcacheAccesses;
                    ++tagReadsAt(cycle);
                    ++readPortsAt(cycle + 1);
                    ++tagReadsAt(cycle + 1);
                    MemResult mr = dcacheReadAt(cycle + 1, rec.effAddr);
                    data_ready = mr.doneCycle;
                    mem_level = mr.level;
                    lastMispredictCycle = cycle;
                    lastMispredictWasLoad = true;
                    spec_failed = true;
                }
                issued_spec = true;
            }
        }

        if (!issued_spec) {
            uint64_t at = cfg.oneCycleLoads ? cycle : cycle + 1;
            if (readPortsAt(at) >= cfg.maxLoadsPerCycle) {
                // Structural stall on a data-cache port.
                lastStall = StallReason::Structural;
                return false;
            }
            ++readPortsAt(at);
            ++tagReadsAt(at);
            MemResult mr = dcacheReadAt(at, rec.effAddr);
            data_ready = mr.doneCycle;
            mem_level = mr.level;
        }

        // Train the tables in program order (issue is in-order), once
        // per load — including non-speculated ones, so the cosim shadow
        // can reproduce the state from the retire stream alone.
        predictor.train(rec.pc, rec.effAddr);
        if (cfg.pred.wayMemo) {
            uint32_t block = rec.effAddr & ~(cfg.dcache.blockBytes - 1);
            int way = dmem.l1().wayOf(rec.effAddr);
            if (way >= 0)
                predictor.trainWay(rec.pc, block,
                                   static_cast<uint32_t>(way));
        }

        // Under the AGI organisation the consumer's ALU stage sits level
        // with the cache-access stage, so loaded data forwards to an
        // instruction issued one cycle earlier than in the LUI pipeline
        // (that is the hazard AGI removes).
        uint64_t use_delay = cfg.agiOrganization ? 0 : 1;
        int d = intDest(in);
        if (d >= 0)
            setIntReady(d, data_ready + use_delay);
        int fd = fpDest(in);
        if (fd >= 0)
            setFpReady(fd, data_ready + use_delay);
        if (in.amode == AMode::PostInc)
            setIntReady(in.rs, cycle + 1);

        takeFu(cls, 1);
        ++st.loads;
        ++st.insts;
        ++loads_this_cycle;
        // The event flag must reflect *this* access's verification
        // outcome. Deriving it from lastMispredict{Cycle,WasLoad} would
        // alias: a second load issuing successfully in the same cycle as
        // another load's misprediction would be reported as mispredicted
        // too.
        notifyIssue(fi, issued_spec, spec_failed, data_ready, mem_level,
                    static_cast<uint8_t>(pr.source), wm_used, wm_stale);
        fbuf.pop_front();
        return true;
    }

    // ---------------- stores ----------------------------------------------
    if (isStore(in.op)) {
        if (stores_this_cycle >= cfg.maxStoresPerCycle) {
            lastStall = StallReason::Structural;
            return false;
        }
        if (sbuf.full()) {
            // Paper: the pipeline stalls and the oldest entry retires.
            FACSIM_DPRINTF(StoreBuffer, "cycle=%llu pc=%08x store buffer "
                           "full, stalling and forcing retirement",
                           static_cast<unsigned long long>(cycle), rec.pc);
            ++st.storeBufferFullStalls;
            store_forced_retire = true;
            lastStall = StallReason::StoreBuffer;
            return false;
        }

        uint64_t seq = seqCounter++;
        bool allow_spec =
            (cfg.facEnabled || cfg.pred.stride) && cfg.speculateStores;
        if (cycle == lastMispredictCycle + 1)
            allow_spec = false;  // the load-after-load exception is loads-only

        bool handled = false;
        bool spec_failed = false;
        PredResult pr;
        if (allow_spec) {
            pr = predictor.predict(rec.pc, rec.baseVal, rec.offsetVal,
                                   rec.offsetFromReg, rec.effAddr);
            if (pr.attempted) {
                ++st.storesSpeculated;
                if (pr.source == PredSource::Stride)
                    ++st.strideSpeculated;
                if (pr.success) {
                    FACSIM_ASSERT(pr.predictedAddr == rec.effAddr,
                                  "predictor success with wrong address");
                    sbuf.push(rec.effAddr, seq, true);
                } else {
                    // Wasted tag probe; the buffered entry is patched by
                    // the MEM-stage re-execution next cycle.
                    FACSIM_DPRINTF(FacVerify, "cycle=%llu pc=%08x store "
                                   "%s mispredict pred=%08x actual=%08x, "
                                   "buffer entry patched",
                                   static_cast<unsigned long long>(cycle),
                                   rec.pc,
                                   pr.source == PredSource::Stride
                                       ? "stride" : "FAC",
                                   pr.predictedAddr, rec.effAddr);
                    ++st.storeSpecFailures;
                    if (pr.source == PredSource::Stride)
                        ++st.strideSpecFailures;
                    ++st.predRecoveryCycles;
                    ++st.extraAccesses;
                    ++st.dcacheAccesses;
                    sbuf.push(0, seq, false);
                    patches.push_back({cycle + 1, seq, rec.effAddr});
                    lastMispredictCycle = cycle;
                    lastMispredictWasLoad = false;
                    spec_failed = true;
                }
                handled = true;
            }
        }
        if (!handled) {
            // Non-speculative: the address is produced in EX and enters
            // the buffer in MEM, one cycle later.
            sbuf.push(0, seq, false);
            patches.push_back({cycle + 1, seq, rec.effAddr});
        }

        // Stores train the stride table too (the PCAX-style predictor
        // keys on the static memory instruction, loads and stores
        // alike); stores never touch the way memo — only loads read.
        predictor.train(rec.pc, rec.effAddr);

        if (in.amode == AMode::PostInc)
            setIntReady(in.rs, cycle + 1);

        takeFu(cls, 1);
        ++st.stores;
        ++st.insts;
        ++stores_this_cycle;
        // Per-access flag, same reasoning as the load path (here the
        // aliased form happened to be correct only because at most one
        // store issues per cycle). A store's data leaves the core when
        // its buffer entry is complete (cycle+1); the cache write and
        // its service level happen at retirement, asynchronously.
        notifyIssue(fi, handled, spec_failed, cycle + 1, memlevel::None,
                    static_cast<uint8_t>(pr.source));
        fbuf.pop_front();
        return true;
    }

    // ---------------- control ----------------------------------------------
    if (isControl(in.op)) {
        btb.update(rec.pc, rec.taken, rec.nextPc);
        if (fi.ctlMispredicted) {
            ++st.btbMispredicts;
            awaitingRedirect = false;
            // First correct-path issue lands branchPenalty cycles from
            // now; AGI resolves branches one stage later.
            uint64_t penalty = cfg.branchPenalty +
                (cfg.agiOrganization ? 1 : 0);
            uint64_t resume = cycle + penalty - 1;
            fetchReadyCycle = std::max(fetchReadyCycle, resume);
        }
        if (in.op == Op::JAL)
            setIntReady(reg::ra, cycle + 1);
        if (in.op == Op::JALR)
            setIntReady(in.rd, cycle + 1);
        takeFu(cls, 1);
        ++st.insts;
        notifyIssue(fi, false, false, cycle + 1, memlevel::None);
        fbuf.pop_front();
        return true;
    }

    // ---------------- ALU / FP ----------------------------------------------
    unsigned lat = cfg.intAluLat;
    unsigned busy = 1;
    switch (in.op) {
      case Op::MUL: lat = cfg.intMulLat; break;
      case Op::DIV: case Op::REM:
        lat = cfg.intDivLat;
        busy = cfg.intDivLat;
        break;
      case Op::MUL_D: lat = cfg.fpMulLat; break;
      case Op::DIV_D:
        lat = cfg.fpDivLat;
        busy = cfg.fpDivLat;
        break;
      case Op::SQRT_D:
        lat = cfg.fpSqrtLat;
        busy = cfg.fpSqrtLat;
        break;
      case Op::ADD_D: case Op::SUB_D: case Op::ABS_D: case Op::NEG_D:
      case Op::MOV_D: case Op::CVT_D_W: case Op::CVT_W_D:
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        lat = cfg.fpAddLat;
        break;
      default:
        break;
    }

    int d = intDest(in);
    if (d >= 0)
        setIntReady(d, cycle + lat);
    int fd = fpDest(in);
    if (fd >= 0)
        setFpReady(fd, cycle + lat);
    switch (in.op) {
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        fpccReady = cycle + lat;
        break;
      default:
        break;
    }

    takeFu(cls, busy);
    ++st.insts;
    notifyIssue(fi, false, false, cycle + lat, memlevel::None);
    fbuf.pop_front();
    return true;
}

void
Pipeline::stepCycle(bool allow_fetch)
{
    // Slot (cycle+2) cannot yet hold valid reservations (they are
    // made at most one cycle ahead), so recycle it now.
    readPorts[(cycle + 2) % portWindow] = 0;
    tagReads[(cycle + 2) % portWindow] = 0;

    // Apply MEM-stage store-address patches due this cycle.
    for (auto it = patches.begin(); it != patches.end();) {
        if (it->applyCycle <= cycle) {
            sbuf.patchAddr(it->seq, it->addr);
            it = patches.erase(it);
        } else {
            ++it;
        }
    }

    if (allow_fetch && !traceDone && !awaitingRedirect &&
        cycle >= fetchReadyCycle && fbuf.size() < cfg.fetchBufferSize) {
        fetchGroup();
    }

    unsigned nloads = 0, nstores = 0;
    bool forced_retire = false;
    unsigned issued = 0;
    for (unsigned slot = 0; slot < cfg.issueWidth; ++slot) {
        if (!tryIssue(nloads, nstores, forced_retire))
            break;
        ++issued;
    }
    if (issued == 0 && !halted) {
        switch (lastStall) {
          case StallReason::Fetch: ++st.stallFetch; break;
          case StallReason::Data: ++st.stallData; break;
          case StallReason::Structural: ++st.stallStructural; break;
          case StallReason::StoreBuffer:
            ++st.stallStoreBuffer;
            break;
          case StallReason::None: break;
        }
    }

    // Store-buffer retirement: the data cache is "unused" when no
    // load accessed it this cycle; a pipeline stalled on a full
    // buffer forces the oldest entry out regardless.
    // (The gate keys on *tag* reads: a memoized load that skipped the
    // tag array leaves it free for the store's tag check, which is the
    // whole point of way memoization. With the memo off, tagReads ==
    // readPorts and this is the original condition bit for bit.)
    if ((tagReadsAt(cycle) == 0 || forced_retire) && sbuf.canRetire()) {
        const StoreBuffer::Entry ent = sbuf.front();
        sbuf.pop();
        ++st.dcacheAccesses;
        if (!cfg.perfectDCache) {
            // Store completion is fire-and-forget: the buffer entry
            // is gone and writes never block the core, so only the
            // hit/miss outcome is consumed (tag state and any
            // MSHR/DRAM occupancy still advance inside the port).
            MemResult r = dmem.write(ent.addr, cycle);
            if (!r.l1Hit)
                ++st.dcacheMisses;
        }
        if (storeRetireHook)
            storeRetireHook(ent.seq, ent.addr);
    }

    if (st.insts != lastProgressInsts) {
        lastProgressInsts = st.insts;
        lastProgressCycle = cycle;
    } else if (cycle - lastProgressCycle > 100000) {
        panic("pipeline deadlock: no instruction issued for 100k "
              "cycles (cycle %llu, %llu insts)",
              static_cast<unsigned long long>(cycle),
              static_cast<unsigned long long>(st.insts));
    }

    ++cycle;
}

PipeStats
Pipeline::run(uint64_t max_insts)
{
    while (!halted) {
        stepCycle(true);
        if (max_insts && st.insts >= max_insts)
            break;
    }

    // Account for the remaining WB drain of the final group.
    st.cycles = cycle + 2;
    return st;
}

uint64_t
Pipeline::fastForward(uint64_t n)
{
    // Route the emulator's fused warming loop into this pipeline's
    // structures. Stores warm as writes: the detailed model's
    // store-buffer retirement reaches the hierarchy as write traffic
    // (write-allocate + dirty), and the buffer itself is empty at
    // every window boundary by construction (drain()).
    struct Sink final : Emulator::WarmSink
    {
        Pipeline &p;
        explicit Sink(Pipeline &p) : p(p) {}
        void
        warmFetch(uint32_t pc) override
        {
            if (!p.cfg.perfectICache)
                p.icache.warm(pc, false);
        }
        void
        warmControl(uint32_t pc, bool taken, uint32_t next_pc) override
        {
            p.btb.warm(pc, taken, next_pc);
        }
        void
        warmData(uint32_t addr, bool is_store) override
        {
            if (!p.cfg.perfectDCache)
                p.dmem.warm(addr, is_store);
        }
    } sink{*this};

    uint64_t done = 0;
    if (!traceDone)
        done = emu.runWarm(n, cfg.icache.blockBits(), sink);
    if (emu.halted()) {
        // The detailed model never sees the HALT; the sampled run is
        // over.
        traceDone = true;
        halted = true;
    }

    ffInsts += done;
    return done;
}

void
Pipeline::drain()
{
    while (!halted && (!fbuf.empty() || !patches.empty() || !sbuf.empty()))
        stepCycle(false);

    // Advance the clock past every busy resource: the next measurement
    // window must not inherit stalls from before the sampling gap.
    // Read-port reservations exist at most one cycle ahead, so cycle+2
    // clears the ring's live range.
    uint64_t q = cycle + 2;
    for (uint64_t v : intReady)
        q = std::max(q, v);
    for (uint64_t v : fpReady)
        q = std::max(q, v);
    q = std::max(q, fpccReady);
    for (const auto &cls : fus)
        for (uint64_t v : cls)
            q = std::max(q, v);
    q = std::max(q, fetchReadyCycle);
    q = std::max(q, dmem.busyUntil());

    cycle = q;
    readPorts.fill(0);
    tagReads.fill(0);
    fetchReadyCycle = cycle;
    // Keep the deadlock watchdog from seeing the jump as a stall.
    lastProgressCycle = cycle;
}

void
Pipeline::saveState(ser::Writer &w) const
{
    // Statistics.
    w.u64(st.cycles);
    w.u64(st.insts);
    w.u64(st.loads);
    w.u64(st.stores);
    w.u64(st.icacheAccesses);
    w.u64(st.icacheMisses);
    w.u64(st.dcacheAccesses);
    w.u64(st.dcacheMisses);
    w.u64(st.btbLookups);
    w.u64(st.btbMispredicts);
    w.u64(st.loadsSpeculated);
    w.u64(st.loadSpecFailures);
    w.u64(st.storesSpeculated);
    w.u64(st.storeSpecFailures);
    w.u64(st.extraAccesses);
    w.u64(st.storeBufferFullStalls);
    w.u64(st.stallFetch);
    w.u64(st.stallData);
    w.u64(st.stallStructural);
    w.u64(st.stallStoreBuffer);
    w.u64(st.strideSpeculated);
    w.u64(st.strideSpecFailures);
    w.u64(st.predRecoveryCycles);
    w.u64(st.wayMemoTagReadsSaved);
    w.u64(st.wayMemoStale);

    // Clocks and control flags (all cycle values are absolute).
    w.u64(cycle);
    w.u64(fetchReadyCycle);
    w.b(awaitingRedirect);
    w.b(traceDone);
    w.b(halted);
    w.u64(seqCounter);
    w.u64(dynSeq_);
    w.u64(ffInsts);
    w.u64(lastProgressCycle);
    w.u64(lastProgressInsts);
    w.u64(lastMispredictCycle);
    w.b(lastMispredictWasLoad);

    // Fetch buffer (in-flight, already-executed trace records).
    w.u64(fbuf.size());
    for (const FetchedInst &fi : fbuf) {
        w.u32(fi.rec.pc);
        w.u8(static_cast<uint8_t>(fi.rec.inst.op));
        w.u8(static_cast<uint8_t>(fi.rec.inst.amode));
        w.u8(fi.rec.inst.rd);
        w.u8(fi.rec.inst.rs);
        w.u8(fi.rec.inst.rt);
        w.u32(static_cast<uint32_t>(fi.rec.inst.imm));
        w.u32(fi.rec.effAddr);
        w.u32(fi.rec.baseVal);
        w.u32(static_cast<uint32_t>(fi.rec.offsetVal));
        w.b(fi.rec.offsetFromReg);
        w.b(fi.rec.taken);
        w.u32(fi.rec.nextPc);
        w.u64(fi.readyCycle);
        w.u64(fi.fetchCycle);
        w.b(fi.ctlMispredicted);
    }

    // Pending MEM-stage store-address patches.
    w.u64(patches.size());
    for (const StorePatch &p : patches) {
        w.u64(p.applyCycle);
        w.u64(p.seq);
        w.u32(p.addr);
    }

    // Scoreboards and functional units.
    for (uint64_t v : intReady)
        w.u64(v);
    for (uint64_t v : fpReady)
        w.u64(v);
    w.u64(fpccReady);
    for (const auto &cls : fus) {
        w.u64(cls.size());
        for (uint64_t v : cls)
            w.u64(v);
    }
    for (unsigned v : readPorts)
        w.u32(v);
    for (unsigned v : tagReads)
        w.u32(v);

    // Structures.
    icache.saveState(w);
    dmem.saveState(w);
    btb.saveState(w);
    sbuf.saveState(w);
    predictor.saveState(w);
}

void
Pipeline::loadState(ser::Reader &r)
{
    st.cycles = r.u64();
    st.insts = r.u64();
    st.loads = r.u64();
    st.stores = r.u64();
    st.icacheAccesses = r.u64();
    st.icacheMisses = r.u64();
    st.dcacheAccesses = r.u64();
    st.dcacheMisses = r.u64();
    st.btbLookups = r.u64();
    st.btbMispredicts = r.u64();
    st.loadsSpeculated = r.u64();
    st.loadSpecFailures = r.u64();
    st.storesSpeculated = r.u64();
    st.storeSpecFailures = r.u64();
    st.extraAccesses = r.u64();
    st.storeBufferFullStalls = r.u64();
    st.stallFetch = r.u64();
    st.stallData = r.u64();
    st.stallStructural = r.u64();
    st.stallStoreBuffer = r.u64();
    st.strideSpeculated = r.u64();
    st.strideSpecFailures = r.u64();
    st.predRecoveryCycles = r.u64();
    st.wayMemoTagReadsSaved = r.u64();
    st.wayMemoStale = r.u64();

    cycle = r.u64();
    fetchReadyCycle = r.u64();
    awaitingRedirect = r.b();
    traceDone = r.b();
    halted = r.b();
    seqCounter = r.u64();
    dynSeq_ = r.u64();
    ffInsts = r.u64();
    lastProgressCycle = r.u64();
    lastProgressInsts = r.u64();
    lastMispredictCycle = r.u64();
    lastMispredictWasLoad = r.b();

    fbuf.clear();
    uint64_t nfetched = r.u64();
    for (uint64_t i = 0; i < nfetched; ++i) {
        FetchedInst fi;
        fi.rec.pc = r.u32();
        fi.rec.inst.op = static_cast<Op>(r.u8());
        fi.rec.inst.amode = static_cast<AMode>(r.u8());
        fi.rec.inst.rd = r.u8();
        fi.rec.inst.rs = r.u8();
        fi.rec.inst.rt = r.u8();
        fi.rec.inst.imm = static_cast<int32_t>(r.u32());
        fi.rec.effAddr = r.u32();
        fi.rec.baseVal = r.u32();
        fi.rec.offsetVal = static_cast<int32_t>(r.u32());
        fi.rec.offsetFromReg = r.b();
        fi.rec.taken = r.b();
        fi.rec.nextPc = r.u32();
        fi.readyCycle = r.u64();
        fi.fetchCycle = r.u64();
        fi.ctlMispredicted = r.b();
        fbuf.push_back(fi);
    }

    patches.clear();
    uint64_t npatches = r.u64();
    for (uint64_t i = 0; i < npatches; ++i) {
        StorePatch p{};
        p.applyCycle = r.u64();
        p.seq = r.u64();
        p.addr = r.u32();
        patches.push_back(p);
    }

    for (uint64_t &v : intReady)
        v = r.u64();
    for (uint64_t &v : fpReady)
        v = r.u64();
    fpccReady = r.u64();
    for (auto &cls : fus) {
        uint64_t n = r.u64();
        FACSIM_ASSERT(n == cls.size(),
                      "checkpoint functional-unit count %llu does not "
                      "match this config's %zu",
                      static_cast<unsigned long long>(n), cls.size());
        for (uint64_t &v : cls)
            v = r.u64();
    }
    for (unsigned &v : readPorts)
        v = r.u32();
    for (unsigned &v : tagReads)
        v = r.u32();

    icache.loadState(r);
    dmem.loadState(r);
    btb.loadState(r);
    sbuf.loadState(r);
    predictor.loadState(r);
}

void
Pipeline::saveWarmState(ser::Writer &w) const
{
    icache.saveState(w);
    dmem.saveState(w);
    btb.saveState(w);
}

void
Pipeline::loadWarmState(ser::Reader &r)
{
    icache.loadState(r);
    dmem.loadState(r);
    btb.loadState(r);
}

} // namespace facsim
