#include "cpu/profiler.hh"

#include "util/logging.hh"

namespace facsim
{

RefClass
classifyRef(const Inst &inst)
{
    if (inst.rs == reg::gp)
        return RefClass::Global;
    if (inst.rs == reg::sp || inst.rs == reg::fp)
        return RefClass::Stack;
    return RefClass::General;
}

void
OffsetHistogram::add(int32_t offset)
{
    ++total;
    if (offset < 0) {
        ++buckets[negBucket];
        return;
    }
    unsigned bits_needed = 0;
    uint32_t v = static_cast<uint32_t>(offset);
    while (v) {
        ++bits_needed;
        v >>= 1;
    }
    if (bits_needed > 16)
        ++buckets[moreBucket];
    else
        ++buckets[bits_needed];
}

double
OffsetHistogram::cumulative(unsigned bits) const
{
    if (!total)
        return 0.0;
    uint64_t acc = 0;
    for (unsigned i = 0; i <= bits && i < numBuckets; ++i)
        acc += buckets[i];
    return static_cast<double>(acc) / static_cast<double>(total);
}

Profiler::Profiler() = default;

size_t
Profiler::addFacConfig(const FacConfig &config)
{
    facs.push_back(FacProfile{.config = config});
    // The profiler reports failure rates over *all* accesses (Tables 3/4),
    // so the evaluating circuit always attempts R+R predictions; the
    // pipeline is where speculateRegReg gates actual speculation.
    FacConfig eval = config;
    eval.speculateRegReg = true;
    calcs.emplace_back(eval);
    return facs.size() - 1;
}

size_t
Profiler::addLtbConfig(unsigned entries, LtbPolicy policy)
{
    ltbProfiles.push_back(LtbProfile{.entries = entries,
                                     .policy = policy});
    ltbs.emplace_back(entries, policy);
    return ltbProfiles.size() - 1;
}

void
Profiler::enableTlb(unsigned entries, uint32_t page_bytes)
{
    tlb = std::make_unique<Tlb>(entries, page_bytes);
}

void
Profiler::observe(const ExecRecord &rec)
{
    ++insts_;
    const Inst &in = rec.inst;
    if (!isMem(in.op))
        return;

    bool load = isLoad(in.op);
    if (load) {
        ++loads_;
        RefClass c = classifyRef(in);
        ++loadsByClass[static_cast<size_t>(c)];
        offsetHists[static_cast<size_t>(c)].add(rec.offsetVal);
    } else {
        ++stores_;
    }

    if (tlb)
        tlb->access(rec.effAddr);

    for (size_t i = 0; i < facs.size(); ++i) {
        FacProfile &fp = facs[i];
        FacResult res = calcs[i].predict(rec.baseVal, rec.offsetVal,
                                         rec.offsetFromReg);
        bool failed = !res.success;
        if (load) {
            ++fp.loadAttempts;
            if (failed)
                ++fp.loadFailures;
            if (!rec.offsetFromReg) {
                ++fp.loadsNoRR;
                if (failed)
                    ++fp.loadFailuresNoRR;
            }
        } else {
            ++fp.storeAttempts;
            if (failed)
                ++fp.storeFailures;
            if (!rec.offsetFromReg) {
                ++fp.storesNoRR;
                if (failed)
                    ++fp.storeFailuresNoRR;
            }
        }
        for (unsigned b = 0; b < 5; ++b) {
            if (res.failMask & (1u << b))
                ++fp.causeCounts[b];
        }
    }

    for (size_t i = 0; i < ltbs.size(); ++i) {
        LtbProfile &lp = ltbProfiles[i];
        ++lp.attempts;
        LtbResult r = ltbs[i].predict(rec.pc);
        if (r.hit && r.predictedAddr == rec.effAddr)
            ++lp.correct;
        ltbs[i].update(rec.pc, rec.effAddr);
    }
}

} // namespace facsim
