#include "cpu/load_predictor.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

void
PredictorConfig::validate(const char *what) const
{
    FACSIM_ASSERT(strideEntries && isPow2(strideEntries),
                  "%s stride table entries must be a positive power of "
                  "two (got %u)", what, strideEntries);
    FACSIM_ASSERT(wayMemoEntries && isPow2(wayMemoEntries),
                  "%s way-memo table entries must be a positive power "
                  "of two (got %u)", what, wayMemoEntries);
    FACSIM_ASSERT(strideConfMax >= 1,
                  "%s stride confidence ceiling must be at least 1",
                  what);
    FACSIM_ASSERT(strideConfThreshold >= 1 &&
                  strideConfThreshold <= strideConfMax,
                  "%s stride confidence threshold (%u) must lie in "
                  "[1, %u]", what, strideConfThreshold, strideConfMax);
}

StridePredictor::StridePredictor(const PredictorConfig &cfg)
    : size_(cfg.strideEntries), confMax_(cfg.strideConfMax),
      confThreshold_(cfg.strideConfThreshold)
{
    cfg.validate();
    table_.resize(size_);
}

StridePredictor::Lookup
StridePredictor::predict(uint32_t pc) const
{
    const Entry &e = table_[indexOf(pc)];
    Lookup l;
    if (e.valid && e.tag == pc >> 2 && e.conf >= confThreshold_) {
        l.confident = true;
        l.predictedAddr = e.lastAddr + static_cast<uint32_t>(e.stride);
    }
    return l;
}

void
StridePredictor::train(uint32_t pc, uint32_t eff_addr)
{
    Entry &e = table_[indexOf(pc)];
    uint32_t tag = pc >> 2;
    if (!e.valid || e.tag != tag) {
        e = Entry{};
        e.tag = tag;
        e.lastAddr = eff_addr;
        e.valid = true;
        return;
    }
    int32_t stride = static_cast<int32_t>(eff_addr - e.lastAddr);
    if (stride == e.stride) {
        if (e.conf < confMax_)
            ++e.conf;
    } else {
        // Saturating-down on a broken pattern; only a fully drained
        // entry retrains its stride, so one outlier in a steady stream
        // does not flush the pattern.
        if (e.conf)
            --e.conf;
        if (!e.conf)
            e.stride = stride;
    }
    e.lastAddr = eff_addr;
}

void
StridePredictor::reset()
{
    for (Entry &e : table_)
        e = Entry{};
}

void
StridePredictor::saveState(ser::Writer &w) const
{
    w.u64(table_.size());
    for (const Entry &e : table_) {
        w.u32(e.tag);
        w.u32(e.lastAddr);
        w.u32(static_cast<uint32_t>(e.stride));
        w.u32(e.conf);
        w.b(e.valid);
    }
}

void
StridePredictor::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == table_.size(),
                  "checkpoint stride table has %llu entries, this "
                  "config has %zu",
                  static_cast<unsigned long long>(n), table_.size());
    for (Entry &e : table_) {
        e.tag = r.u32();
        e.lastAddr = r.u32();
        e.stride = static_cast<int32_t>(r.u32());
        e.conf = r.u32();
        e.valid = r.b();
    }
}

WayMemo::WayMemo(const PredictorConfig &cfg)
    : size_(cfg.wayMemoEntries)
{
    cfg.validate();
    table_.resize(size_);
}

int
WayMemo::lookup(uint32_t pc, uint32_t block_addr) const
{
    const Entry &e = table_[indexOf(pc)];
    if (e.valid && e.tag == pc >> 2 && e.blockAddr == block_addr)
        return static_cast<int>(e.way);
    return -1;
}

void
WayMemo::train(uint32_t pc, uint32_t block_addr, uint32_t way)
{
    Entry &e = table_[indexOf(pc)];
    e.tag = pc >> 2;
    e.blockAddr = block_addr;
    e.way = way;
    e.valid = true;
}

void
WayMemo::reset()
{
    for (Entry &e : table_)
        e = Entry{};
}

void
WayMemo::saveState(ser::Writer &w) const
{
    w.u64(table_.size());
    for (const Entry &e : table_) {
        w.u32(e.tag);
        w.u32(e.blockAddr);
        w.u32(e.way);
        w.b(e.valid);
    }
}

void
WayMemo::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == table_.size(),
                  "checkpoint way-memo table has %llu entries, this "
                  "config has %zu",
                  static_cast<unsigned long long>(n), table_.size());
    for (Entry &e : table_) {
        e.tag = r.u32();
        e.blockAddr = r.u32();
        e.way = r.u32();
        e.valid = r.b();
    }
}

LoadPredictor::LoadPredictor(bool fac_enabled, const FacConfig &fc,
                             const PredictorConfig &pc)
    : facEnabled_(fac_enabled), cfg_(pc), fac_(fc), stride_(pc),
      wayMemo_(pc)
{
    cfg_.validate();
}

PredResult
LoadPredictor::predict(uint32_t pc, uint32_t base, int32_t offset,
                       bool offset_from_reg, uint32_t eff_addr) const
{
    PredResult r;
    if (cfg_.stride) {
        StridePredictor::Lookup l = stride_.predict(pc);
        if (l.confident) {
            r.attempted = true;
            r.source = PredSource::Stride;
            r.predictedAddr = l.predictedAddr;
            r.success = l.predictedAddr == eff_addr;
            return r;
        }
    }
    if (facEnabled_) {
        FacResult fr = fac_.predict(base, offset, offset_from_reg);
        if (fr.attempted) {
            r.attempted = true;
            r.source = PredSource::Fac;
            r.predictedAddr = fr.predictedAddr;
            r.success = fr.success;
            r.facFailMask = fr.failMask;
        }
    }
    return r;
}

void
LoadPredictor::train(uint32_t pc, uint32_t eff_addr)
{
    if (cfg_.stride)
        stride_.train(pc, eff_addr);
}

int
LoadPredictor::memoWay(uint32_t pc, uint32_t block_addr) const
{
    if (!cfg_.wayMemo)
        return -1;
    return wayMemo_.lookup(pc, block_addr);
}

void
LoadPredictor::trainWay(uint32_t pc, uint32_t block_addr, uint32_t way)
{
    if (cfg_.wayMemo)
        wayMemo_.train(pc, block_addr, way);
}

void
LoadPredictor::reset()
{
    stride_.reset();
    wayMemo_.reset();
}

void
LoadPredictor::saveState(ser::Writer &w) const
{
    stride_.saveState(w);
    wayMemo_.saveState(w);
}

void
LoadPredictor::loadState(ser::Reader &r)
{
    stride_.loadState(r);
    wayMemo_.loadState(r);
}

} // namespace facsim
