/**
 * @file
 * Pluggable load/store address predictors — the predictor zoo.
 *
 * The paper's fast address calculation (FAC) predicts an access's
 * effective address from the *operands* of the address computation
 * (core/fast_addr_calc.hh). The related work predicts from the
 * instruction's *PC* instead:
 *
 *  - a PC-indexed base/stride table (PCAX-style; Murthy & Sohi) that
 *    predicts lastAddr+stride once a stride has repeated often enough,
 *    trained in retire order, and
 *  - way memoization (Ishihara & Fallah): a PC-indexed table
 *    remembering which L1 way a load's block lived in, so a confident
 *    FAC hit can skip the tag read entirely — with a mandatory late
 *    verify against the tag state, since the memo can go stale under
 *    eviction.
 *
 * LoadPredictor is the pipeline-facing front-end. Every mode feeds the
 * same speculative-access path: predict() nominates one early address
 * source per access (stride-confident first, FAC otherwise), the
 * pipeline issues the speculative cache access, and the verify signal
 * (PredResult::success) fires iff the predicted address equals the
 * architectural one. Training is unconditional and in program order so
 * the cosim verifier can reproduce every table deterministically.
 */

#ifndef FACSIM_CPU_LOAD_PREDICTOR_HH
#define FACSIM_CPU_LOAD_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "core/fast_addr_calc.hh"
#include "util/serialize.hh"

namespace facsim
{

/** Knobs for the table-based predictors (FAC itself is in FacConfig). */
struct PredictorConfig
{
    /** Enable the PC-indexed stride predictor as an address source. */
    bool stride = false;
    /** Enable way memoization on confident FAC hits (loads only). */
    bool wayMemo = false;
    /** Stride table entries (positive power of two). */
    uint32_t strideEntries = 1024;
    /** Saturating confidence ceiling (>= 1). */
    uint32_t strideConfMax = 3;
    /** Predict only at conf >= threshold (1 <= threshold <= max). */
    uint32_t strideConfThreshold = 2;
    /** Way-memo table entries (positive power of two). */
    uint32_t wayMemoEntries = 64;

    /** True when any table-based predictor is switched on. */
    bool anyEnabled() const { return stride || wayMemo; }

    /**
     * Die with a clear message unless the knobs are coherent: table
     * sizes positive powers of two, confidence threshold within
     * [1, strideConfMax]. Same contract as CacheConfig::validate().
     * @param what label for the error message.
     */
    void validate(const char *what = "predictor") const;
};

/** Which early-address source produced a speculative access. */
enum class PredSource : uint8_t
{
    None = 0,
    Fac = 1,     ///< carry-free fast address calculation
    Stride = 2,  ///< PC-indexed stride table
};

/** Outcome of one prediction (any source). */
struct PredResult
{
    /** False when no source nominated an address for this access. */
    bool attempted = false;
    /** Verify signal: true iff predictedAddr == architectural address. */
    bool success = false;
    /** Address the speculative cache access used. */
    uint32_t predictedAddr = 0;
    /** The source that made the prediction. */
    PredSource source = PredSource::None;
    /** FAC failure-condition mask; valid only when source == Fac. */
    uint8_t facFailMask = 0;
};

/**
 * Direct-mapped PC-indexed base/stride predictor with saturating
 * confidence. predict() is const; train() must be called exactly once
 * per executed load/store, in program order, so the cosim shadow copy
 * stays in lockstep with the pipeline's.
 */
class StridePredictor
{
  public:
    explicit StridePredictor(const PredictorConfig &cfg);

    /** One table lookup. */
    struct Lookup
    {
        bool confident = false;     ///< entry hit at conf >= threshold
        uint32_t predictedAddr = 0; ///< lastAddr + stride (valid iff confident)
    };

    /** Look up the memory instruction at @p pc; no state change. */
    Lookup predict(uint32_t pc) const;

    /** Train with the architectural address (every load/store). */
    void train(uint32_t pc, uint32_t eff_addr);

    /** Invalidate all entries. */
    void reset();

    /** Serialize table contents. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (table size must match). */
    void loadState(ser::Reader &r);

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint32_t lastAddr = 0;
        int32_t stride = 0;
        uint32_t conf = 0;
        bool valid = false;
    };

    uint32_t indexOf(uint32_t pc) const { return (pc >> 2) & (size_ - 1); }

    uint32_t size_;
    uint32_t confMax_;
    uint32_t confThreshold_;
    std::vector<Entry> table_;
};

/**
 * Direct-mapped PC-indexed way-memoization table: remembers which way
 * of the L1 set a load's block occupied. A lookup hit only *nominates*
 * a way — the pipeline must verify it against Cache::wayOf() before
 * trusting it (the mandatory late verify); a mismatch is a stale entry
 * and costs a full replay, never silent wrong data.
 */
class WayMemo
{
  public:
    explicit WayMemo(const PredictorConfig &cfg);

    /**
     * Memoized way for @p pc at block-aligned @p block_addr, or -1
     * when the table has no matching entry.
     */
    int lookup(uint32_t pc, uint32_t block_addr) const;

    /** Record the resolved way after the access completed. */
    void train(uint32_t pc, uint32_t block_addr, uint32_t way);

    /** Invalidate all entries. */
    void reset();

    /** Serialize table contents. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (table size must match). */
    void loadState(ser::Reader &r);

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint32_t blockAddr = 0;
        uint32_t way = 0;
        bool valid = false;
    };

    uint32_t indexOf(uint32_t pc) const { return (pc >> 2) & (size_ - 1); }

    uint32_t size_;
    std::vector<Entry> table_;
};

/**
 * Pipeline-facing predictor front-end: owns the FAC circuit and the
 * table predictors and arbitrates between them. Selection is
 * stride-confident first (the PC-indexed source is available earlier
 * in the pipe than the operands), FAC otherwise; a source that does
 * not fire leaves the access on the normal 2-cycle path.
 */
class LoadPredictor
{
  public:
    LoadPredictor(bool fac_enabled, const FacConfig &fc,
                  const PredictorConfig &pc);

    /**
     * Nominate an early address for the access at @p pc.
     *
     * @param base value of the base register.
     * @param offset displacement or index-register value.
     * @param offset_from_reg true for register+register addressing.
     * @param eff_addr the architectural effective address (used only
     *        to compute the verify signal, as the pipeline does).
     */
    PredResult predict(uint32_t pc, uint32_t base, int32_t offset,
                       bool offset_from_reg, uint32_t eff_addr) const;

    /**
     * Train the stride table; call exactly once per executed
     * load/store, in program order (after predict()).
     */
    void train(uint32_t pc, uint32_t eff_addr);

    /** Way-memo lookup (see WayMemo::lookup); -1 when disabled. */
    int memoWay(uint32_t pc, uint32_t block_addr) const;

    /** Way-memo training; no-op when disabled. */
    void trainWay(uint32_t pc, uint32_t block_addr, uint32_t way);

    /** Invalidate every table. */
    void reset();

    /** Serialize all table state. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (config must match). */
    void loadState(ser::Reader &r);

    /** The table-predictor knobs in force. */
    const PredictorConfig &config() const { return cfg_; }

  private:
    bool facEnabled_;
    PredictorConfig cfg_;
    FastAddrCalc fac_;
    StridePredictor stride_;
    WayMemo wayMemo_;
};

} // namespace facsim

#endif // FACSIM_CPU_LOAD_PREDICTOR_HH
