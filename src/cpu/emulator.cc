#include "cpu/emulator.hh"

#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Emulator::Emulator(const Program &prog, Memory &mem, const LinkedImage &img,
                   uint32_t initial_sp)
    : prog_(prog), mem_(mem), pc_(img.entryPc), engine_(s_defaultEngine)
{
    FACSIM_ASSERT(prog.linked(), "emulator needs a linked program");
    numInsts_ = prog.numInsts();
    code_ = numInsts_ ? &prog.inst(0) : nullptr;
    regs[reg::gp] = img.gpValue;
    regs[reg::sp] = initial_sp;
    regs[reg::ra] = 0;
}

void
Emulator::fetchFault(uint32_t pc) const
{
    if (pc < Program::textBase || (pc & 3) != 0)
        panic("bad PC 0x%08x", pc);
    panic("PC 0x%08x past end of text", pc);
}

void
Emulator::setIntReg(unsigned r, uint32_t v)
{
    FACSIM_ASSERT(r < numIntRegs, "register index out of range");
    if (r != reg::zero)
        regs[r] = v;
}

bool
Emulator::step(ExecRecord *rec)
{
    return rec ? stepImpl<true, false>(rec, nullptr)
               : stepImpl<false, false>(nullptr, nullptr);
}

template <bool WithRec, bool WithWarm>
bool
Emulator::stepImpl(ExecRecord *rec, [[maybe_unused]] WarmSink *sink)
{
    if (halted_)
        return false;

    const uint32_t pc = pc_;
    // Fetch from the predecoded dense array: one shift and one bounds
    // check. The wraparound of (pc - textBase) for pc < textBase lands
    // in the idx >= numInsts_ check.
    const uint32_t idx = (pc - Program::textBase) >> 2;
    if (idx >= numInsts_ || (pc & 3) != 0) [[unlikely]]
        fetchFault(pc);
    const Inst &in = code_[idx];
    uint32_t next_pc = pc + 4;

    ExecRecord *const r = rec;
    if constexpr (WithRec) {
        *r = ExecRecord{};
        r->pc = pc;
        r->inst = in;
    }

    auto wr = [&](uint8_t d, uint32_t v) {
        if (d != reg::zero)
            regs[d] = v;
    };
    auto s = [&](uint8_t x) { return static_cast<int32_t>(regs[x]); };

    [[maybe_unused]] bool warm_taken = false;
    auto branchTo = [&](bool cond) {
        if (cond) {
            next_pc = pc + 4 + (static_cast<uint32_t>(in.imm) << 2);
            if constexpr (WithRec)
                r->taken = true;
            if constexpr (WithWarm)
                warm_taken = true;
        }
    };

    switch (in.op) {
      case Op::NOP:
        break;
      case Op::HALT:
        halted_ = true;
        break;

      case Op::ADD: wr(in.rd, regs[in.rs] + regs[in.rt]); break;
      case Op::SUB: wr(in.rd, regs[in.rs] - regs[in.rt]); break;
      case Op::AND: wr(in.rd, regs[in.rs] & regs[in.rt]); break;
      case Op::OR: wr(in.rd, regs[in.rs] | regs[in.rt]); break;
      case Op::XOR: wr(in.rd, regs[in.rs] ^ regs[in.rt]); break;
      case Op::NOR: wr(in.rd, ~(regs[in.rs] | regs[in.rt])); break;
      case Op::SLT: wr(in.rd, s(in.rs) < s(in.rt) ? 1 : 0); break;
      case Op::SLTU: wr(in.rd, regs[in.rs] < regs[in.rt] ? 1 : 0); break;
      case Op::MUL:
        wr(in.rd, static_cast<uint32_t>(
               static_cast<uint64_t>(regs[in.rs]) * regs[in.rt]));
        break;
      case Op::DIV:
        // Division by zero yields 0 by definition in this simulator (the
        // MIPS result is UNPREDICTABLE); workloads never rely on it.
        wr(in.rd, regs[in.rt] == 0 ? 0
               : (s(in.rs) == INT32_MIN && s(in.rt) == -1)
               ? static_cast<uint32_t>(INT32_MIN)
               : static_cast<uint32_t>(s(in.rs) / s(in.rt)));
        break;
      case Op::REM:
        wr(in.rd, regs[in.rt] == 0 ? 0
               : (s(in.rs) == INT32_MIN && s(in.rt) == -1)
               ? 0
               : static_cast<uint32_t>(s(in.rs) % s(in.rt)));
        break;
      case Op::SLL: wr(in.rd, regs[in.rs] << (in.imm & 31)); break;
      case Op::SRL: wr(in.rd, regs[in.rs] >> (in.imm & 31)); break;
      case Op::SRA:
        wr(in.rd, static_cast<uint32_t>(s(in.rs) >> (in.imm & 31)));
        break;
      case Op::SLLV: wr(in.rd, regs[in.rs] << (regs[in.rt] & 31)); break;
      case Op::SRLV: wr(in.rd, regs[in.rs] >> (regs[in.rt] & 31)); break;
      case Op::SRAV:
        wr(in.rd, static_cast<uint32_t>(s(in.rs) >> (regs[in.rt] & 31)));
        break;

      case Op::ADDI:
        wr(in.rt, regs[in.rs] + static_cast<uint32_t>(in.imm));
        break;
      case Op::ANDI:
        wr(in.rt, regs[in.rs] & static_cast<uint32_t>(in.imm));
        break;
      case Op::ORI:
        wr(in.rt, regs[in.rs] | static_cast<uint32_t>(in.imm));
        break;
      case Op::XORI:
        wr(in.rt, regs[in.rs] ^ static_cast<uint32_t>(in.imm));
        break;
      case Op::SLTI:
        wr(in.rt, s(in.rs) < in.imm ? 1 : 0);
        break;
      case Op::SLTIU:
        wr(in.rt, regs[in.rs] < static_cast<uint32_t>(in.imm) ? 1 : 0);
        break;
      case Op::LUI:
        wr(in.rt, static_cast<uint32_t>(in.imm) << 16);
        break;

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
      case Op::SB: case Op::SH: case Op::SW:
      case Op::LWC1: case Op::LDC1: case Op::SWC1: case Op::SDC1: {
        const uint32_t base_val = regs[in.rs];
        int32_t offset_val = 0;
        [[maybe_unused]] bool offset_from_reg = false;
        switch (in.amode) {
          case AMode::RegConst:
            offset_val = in.imm;
            break;
          case AMode::RegReg:
            offset_val = static_cast<int32_t>(regs[in.rd]);
            offset_from_reg = true;
            break;
          case AMode::PostInc:
            break;
        }
        uint32_t ea = base_val + static_cast<uint32_t>(offset_val);
        if constexpr (WithRec) {
            r->baseVal = base_val;
            r->offsetVal = offset_val;
            r->offsetFromReg = offset_from_reg;
            r->effAddr = ea;
        }
        unsigned size = memAccessSize(in.op);
        FACSIM_ASSERT((ea & (size - 1)) == 0,
                      "unaligned %s access at 0x%08x (pc 0x%08x)",
                      opName(in.op), ea, pc);
        if constexpr (WithWarm)
            sink->warmData(ea, isStore(in.op));
        switch (in.op) {
          case Op::LB: wr(in.rt, static_cast<uint32_t>(
                             static_cast<int8_t>(mem_.read8(ea)))); break;
          case Op::LBU: wr(in.rt, mem_.read8(ea)); break;
          case Op::LH: wr(in.rt, static_cast<uint32_t>(
                             static_cast<int16_t>(mem_.read16(ea)))); break;
          case Op::LHU: wr(in.rt, mem_.read16(ea)); break;
          case Op::LW: wr(in.rt, mem_.read32(ea)); break;
          case Op::SB: mem_.write8(ea, static_cast<uint8_t>(regs[in.rt]));
            break;
          case Op::SH: mem_.write16(ea, static_cast<uint16_t>(regs[in.rt]));
            break;
          case Op::SW: mem_.write32(ea, regs[in.rt]); break;
          case Op::LWC1: {
            uint32_t bits32 = mem_.read32(ea);
            float f;
            static_assert(sizeof(float) == 4);
            __builtin_memcpy(&f, &bits32, 4);
            fregs[in.rt] = static_cast<double>(f);
            break;
          }
          case Op::SWC1: {
            float f = static_cast<float>(fregs[in.rt]);
            uint32_t bits32;
            __builtin_memcpy(&bits32, &f, 4);
            mem_.write32(ea, bits32);
            break;
          }
          case Op::LDC1: {
            uint64_t bits64 = mem_.read64(ea);
            double d;
            __builtin_memcpy(&d, &bits64, 8);
            fregs[in.rt] = d;
            break;
          }
          case Op::SDC1: {
            uint64_t bits64;
            double d = fregs[in.rt];
            __builtin_memcpy(&bits64, &d, 8);
            mem_.write64(ea, bits64);
            break;
          }
          default:
            panic("unreachable");
        }
        if (in.amode == AMode::PostInc)
            wr(in.rs, regs[in.rs] + static_cast<uint32_t>(in.imm));
        break;
      }

      case Op::BEQ: branchTo(regs[in.rs] == regs[in.rt]); break;
      case Op::BNE: branchTo(regs[in.rs] != regs[in.rt]); break;
      case Op::BLEZ: branchTo(s(in.rs) <= 0); break;
      case Op::BGTZ: branchTo(s(in.rs) > 0); break;
      case Op::BLTZ: branchTo(s(in.rs) < 0); break;
      case Op::BGEZ: branchTo(s(in.rs) >= 0); break;
      case Op::BC1T: branchTo(fpcc); break;
      case Op::BC1F: branchTo(!fpcc); break;

      case Op::J:
        next_pc = static_cast<uint32_t>(in.imm) << 2;
        if constexpr (WithRec)
            r->taken = true;
        if constexpr (WithWarm)
            warm_taken = true;
        break;
      case Op::JAL:
        wr(reg::ra, pc + 4);
        next_pc = static_cast<uint32_t>(in.imm) << 2;
        if constexpr (WithRec)
            r->taken = true;
        if constexpr (WithWarm)
            warm_taken = true;
        break;
      case Op::JR:
        next_pc = regs[in.rs];
        if constexpr (WithRec)
            r->taken = true;
        if constexpr (WithWarm)
            warm_taken = true;
        break;
      case Op::JALR:
        wr(in.rd, pc + 4);
        next_pc = regs[in.rs];
        if constexpr (WithRec)
            r->taken = true;
        if constexpr (WithWarm)
            warm_taken = true;
        break;

      case Op::ADD_D: fregs[in.rd] = fregs[in.rs] + fregs[in.rt]; break;
      case Op::SUB_D: fregs[in.rd] = fregs[in.rs] - fregs[in.rt]; break;
      case Op::MUL_D: fregs[in.rd] = fregs[in.rs] * fregs[in.rt]; break;
      case Op::DIV_D: fregs[in.rd] = fregs[in.rs] / fregs[in.rt]; break;
      case Op::SQRT_D: fregs[in.rd] = std::sqrt(fregs[in.rs]); break;
      case Op::ABS_D: fregs[in.rd] = std::fabs(fregs[in.rs]); break;
      case Op::NEG_D: fregs[in.rd] = -fregs[in.rs]; break;
      case Op::MOV_D: fregs[in.rd] = fregs[in.rs]; break;
      case Op::CVT_D_W: {
        // Source is an integer bit pattern previously moved in via mtc1.
        uint64_t bits64;
        __builtin_memcpy(&bits64, &fregs[in.rs], 8);
        fregs[in.rd] = static_cast<double>(
            static_cast<int32_t>(static_cast<uint32_t>(bits64)));
        break;
      }
      case Op::CVT_W_D: {
        // Saturate out-of-range conversions (the MIPS result would be
        // implementation-defined; saturation keeps the simulator's C++
        // well defined).
        double v = fregs[in.rs];
        int32_t w;
        if (!(v >= -2147483648.0))
            w = INT32_MIN;
        else if (v >= 2147483647.0)
            w = INT32_MAX;
        else
            w = static_cast<int32_t>(v);
        uint64_t bits64 = static_cast<uint32_t>(w);
        __builtin_memcpy(&fregs[in.rd], &bits64, 8);
        break;
      }
      case Op::C_EQ_D: fpcc = fregs[in.rs] == fregs[in.rt]; break;
      case Op::C_LT_D: fpcc = fregs[in.rs] < fregs[in.rt]; break;
      case Op::C_LE_D: fpcc = fregs[in.rs] <= fregs[in.rt]; break;
      case Op::MTC1: {
        uint64_t bits64 = regs[in.rt];
        __builtin_memcpy(&fregs[in.rd], &bits64, 8);
        break;
      }
      case Op::MFC1: {
        uint64_t bits64;
        __builtin_memcpy(&bits64, &fregs[in.rs], 8);
        wr(in.rd, static_cast<uint32_t>(bits64));
        break;
      }

      default:
        panic("emulator: unimplemented op %s at pc 0x%08x",
              opName(in.op), pc);
    }

    if constexpr (WithWarm) {
        if (opFlags(in.op) & opclass::control)
            sink->warmControl(pc, warm_taken, next_pc);
    }

    pc_ = next_pc;
    if constexpr (WithRec)
        r->nextPc = next_pc;
    ++icount;
    return true;
}

uint64_t
Emulator::run(uint64_t max_insts)
{
#if FACSIM_HAS_COMPUTED_GOTO
    if (engine_ == EmuEngine::Threaded)
        return runBlocksThreaded<false>(max_insts, nullptr);
#endif
    return runBlocksSwitch<false>(max_insts, nullptr);
}

uint64_t
Emulator::runWarm(uint64_t max_insts, unsigned iblock_bits,
                  WarmSink &sink)
{
    // max_insts is a hard budget here, not "unbounded" (run() semantics).
    if (max_insts == 0)
        return 0;
    WarmCtx wc{&sink, iblock_bits, 0xffffffffu};
#if FACSIM_HAS_COMPUTED_GOTO
    if (engine_ == EmuEngine::Threaded)
        return runBlocksThreaded<true>(max_insts, &wc);
#endif
    return runBlocksSwitch<true>(max_insts, &wc);
}

uint64_t
Emulator::runScalar(uint64_t n, WarmCtx *wc)
{
    uint64_t done = 0;
    if (wc) {
        // Continue the warm streams exactly where the block loop left
        // them (wc->prevIBlock carries the fetch-dedup state across).
        while (done < n && !halted_) {
            const uint32_t block = pc_ >> wc->shift;
            if (block != wc->prevIBlock) {
                wc->prevIBlock = block;
                wc->sink->warmFetch(pc_);
            }
            if (!stepImpl<false, true>(nullptr, wc->sink))
                break;
            ++done;
        }
    } else {
        while (done < n && !halted_) {
            stepImpl<false, false>(nullptr, nullptr);
            ++done;
        }
    }
    return done;
}

void
Emulator::flushWarm(const EmuBlock &blk, EmuExit exit_kind, uint32_t next_pc,
                    unsigned dn, WarmCtx *wc)
{
    WarmSink &sink = *wc->sink;
    const unsigned shift = wc->shift;
    const uint32_t last_pc = blk.fallPc - 4;

    // Fetch stream: replay the per-instruction block-transition checks
    // arithmetically. Within a block the PC steps by 4, so transitions
    // happen exactly at the instruction-block-aligned PCs in
    // (startPc, last_pc] — plus the block entry if the previous
    // instruction ended in a different instruction block.
    if ((blk.startPc >> shift) != wc->prevIBlock)
        sink.warmFetch(blk.startPc);
    if (shift >= 2) {
        const uint32_t step = 1u << shift;
        for (uint32_t p = ((blk.startPc >> shift) + 1) << shift;
             p <= last_pc && p > blk.startPc; p += step)
            sink.warmFetch(p);
    } else {
        // Degenerate instruction blocks smaller than one instruction.
        uint32_t prev = blk.startPc >> shift;
        for (uint32_t p = blk.startPc + 4; p <= last_pc; p += 4) {
            if ((p >> shift) != prev) {
                prev = p >> shift;
                sink.warmFetch(p);
            }
        }
    }
    wc->prevIBlock = last_pc >> shift;

    // Data stream, in retirement order.
    for (unsigned i = 0; i < dn; ++i)
        sink.warmData(dbuf_[i].addr, dbuf_[i].isStore != 0);

    // Control stream: at most the one terminal transfer (a retiring
    // HALT is counted and fetch-warmed but reports no control traffic,
    // matching the scalar path).
    switch (exit_kind) {
      case EmuExit::BrNotTaken:
        sink.warmControl(last_pc, false, next_pc);
        break;
      case EmuExit::BrTaken:
      case EmuExit::Jump:
      case EmuExit::Indirect:
        sink.warmControl(last_pc, true, next_pc);
        break;
      case EmuExit::Fall:
      case EmuExit::Halt:
        break;
    }
}

#if FACSIM_HAS_COMPUTED_GOTO

template <bool WithWarm>
uint64_t
Emulator::runBlocksThreaded(uint64_t max_insts, WarmCtx *wc)
{
    // Each template instantiation is its own function with its own
    // label addresses: blocks bound against another instantiation's
    // table must be rebound before dispatching here (jumping to a
    // foreign function's label is undefined behaviour).
    static const void *const kLabels[] = {
#define FACSIM_EMU_LABEL(k) &&L_##k,
        FACSIM_EMU_KINDS(FACSIM_EMU_LABEL)
#undef FACSIM_EMU_LABEL
    };
    if (labels_ != kLabels) {
        labels_ = kLabels;
        for (const auto &b : blocks_)
            b->bound = false;
    }

    uint32_t *const R = regs.data();
    double *const F = fregs.data();
    Memory &M = mem_;
    [[maybe_unused]] EmuDataTouch *const db = dbuf_.data();
    [[maybe_unused]] unsigned dn = 0;
    const EmuOpRec *ip = nullptr;
    EmuExit exk = EmuExit::Fall;
    uint32_t ind_pc = 0;
    uint64_t done = 0;
    EmuBlock *blk = nullptr;
    EmuBlock *next_blk = nullptr;
    EmuBlock **chain_slot = nullptr;

    for (;;) {
        if (halted_ || (max_insts != 0 && done >= max_insts))
            break;
        if (next_blk) {
            // Chained transition: no lookup (and no hit-counter tick).
            blk = next_blk;
        } else {
            blk = acquireBlock(pc_);
            if (chain_slot) {
                *chain_slot = blk;
                ++tstats_.superblockChains;
            }
        }
        next_blk = nullptr;
        chain_slot = nullptr;
        if (max_insts != 0 && done + blk->numOps > max_insts) {
            // Block would overrun the budget: exact per-inst tail.
            done += runScalar(max_insts - done, wc);
            break;
        }
        if (!blk->bound)
            bindBlock(*blk);
        ip = blk->ops.data();
        if constexpr (WithWarm)
            dn = 0;
        goto *ip->handler;

#define OP(k) L_##k:
#define NEXT { ++ip; goto *ip->handler; }
#define ENDB goto block_done;
#include "cpu/emu_exec.inc"
#undef OP
#undef NEXT
#undef ENDB

      block_done:
        uint32_t next = blk->fallPc;
        switch (exk) {
          case EmuExit::Fall:
          case EmuExit::BrNotTaken:
            next_blk = blk->fall;
            if (!next_blk)
                chain_slot = &blk->fall;
            break;
          case EmuExit::BrTaken:
          case EmuExit::Jump:
            next = blk->takenPc;
            next_blk = blk->taken;
            if (!next_blk)
                chain_slot = &blk->taken;
            break;
          case EmuExit::Indirect:
            next = ind_pc;
            break;
          case EmuExit::Halt:
            break;
        }
        done += blk->numOps;
        icount += blk->numOps;
        if constexpr (WithWarm)
            flushWarm(*blk, exk, next, dn, wc);
        pc_ = next;
    }
    return done;
}

#endif // FACSIM_HAS_COMPUTED_GOTO

template <bool WithWarm>
uint64_t
Emulator::runBlocksSwitch(uint64_t max_insts, WarmCtx *wc)
{
    uint32_t *const R = regs.data();
    double *const F = fregs.data();
    Memory &M = mem_;
    [[maybe_unused]] EmuDataTouch *const db = dbuf_.data();
    [[maybe_unused]] unsigned dn = 0;
    const EmuOpRec *ip = nullptr;
    EmuExit exk = EmuExit::Fall;
    uint32_t ind_pc = 0;
    uint64_t done = 0;
    EmuBlock *blk = nullptr;
    EmuBlock *next_blk = nullptr;
    EmuBlock **chain_slot = nullptr;

    for (;;) {
        if (halted_ || (max_insts != 0 && done >= max_insts))
            break;
        if (next_blk) {
            blk = next_blk;
        } else {
            blk = acquireBlock(pc_);
            if (chain_slot) {
                *chain_slot = blk;
                ++tstats_.superblockChains;
            }
        }
        next_blk = nullptr;
        chain_slot = nullptr;
        if (max_insts != 0 && done + blk->numOps > max_insts) {
            done += runScalar(max_insts - done, wc);
            break;
        }
        ip = blk->ops.data();
        if constexpr (WithWarm)
            dn = 0;
        for (;;) {
            switch (ip->kind) {
#define OP(k) case EmuKind::k:
#define NEXT { ++ip; break; }
#define ENDB goto block_done;
#include "cpu/emu_exec.inc"
#undef OP
#undef NEXT
#undef ENDB
              case EmuKind::NumKinds:
                panic("corrupt handler record");
            }
        }

      block_done:
        uint32_t next = blk->fallPc;
        switch (exk) {
          case EmuExit::Fall:
          case EmuExit::BrNotTaken:
            next_blk = blk->fall;
            if (!next_blk)
                chain_slot = &blk->fall;
            break;
          case EmuExit::BrTaken:
          case EmuExit::Jump:
            next = blk->takenPc;
            next_blk = blk->taken;
            if (!next_blk)
                chain_slot = &blk->taken;
            break;
          case EmuExit::Indirect:
            next = ind_pc;
            break;
          case EmuExit::Halt:
            break;
        }
        done += blk->numOps;
        icount += blk->numOps;
        if constexpr (WithWarm)
            flushWarm(*blk, exk, next, dn, wc);
        pc_ = next;
    }
    return done;
}

void
Emulator::saveState(ser::Writer &w) const
{
    // Only the architectural registers — the zero-sink slot is
    // scratch, and the serialized format predates it.
    for (unsigned i = 0; i < numIntRegs; ++i)
        w.u32(regs[i]);
    // FP registers as raw bit patterns so NaN payloads survive.
    for (double f : fregs) {
        uint64_t bits;
        __builtin_memcpy(&bits, &f, 8);
        w.u64(bits);
    }
    w.b(fpcc);
    w.u32(pc_);
    w.b(halted_);
    w.u64(icount);
}

void
Emulator::loadState(ser::Reader &r)
{
    for (unsigned i = 0; i < numIntRegs; ++i)
        regs[i] = r.u32();
    for (double &f : fregs) {
        uint64_t bits = r.u64();
        __builtin_memcpy(&f, &bits, 8);
    }
    fpcc = r.b();
    pc_ = r.u32();
    halted_ = r.b();
    icount = r.u64();
    // Architectural state just changed under the engine: drop every
    // translated block (see invalidateBlockCache's contract).
    invalidateBlockCache();
}

} // namespace facsim
