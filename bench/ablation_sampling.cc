/**
 * @file
 * Sampling ablation: accuracy and cost of SMARTS-style systematic
 * sampling as a function of the sampling period U and the per-window
 * detailed warmup W (measured window fixed by --detail, default 1000).
 *
 * For every workload the harness runs the FAC machine and the baseline
 * machine in full detail (the reference), then once per (U, W) pair
 * under sampling, and reports per-pair aggregates across workloads:
 * CPI error of the sampled estimate vs the full run, how often the
 * reported 95% CI covers the true CPI, the relative CI half-width, the
 * speedup error (sampled FAC/baseline estimate vs the true ratio), the
 * fraction of instructions simulated in detail, and the host wall-clock
 * reduction relative to the full-detail runs.
 *
 * Shapes to check: CPI error well under 1% for periods that keep a few
 * hundred windows; CI coverage near 19/20; wall-clock reduction
 * approaching the inverse detail fraction as U grows; accuracy decaying
 * gracefully (and the CI honestly widening) as windows get scarce.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    uint64_t detail = 1000;
    std::vector<uint64_t> periods{10000, 25000, 50000};
    std::vector<uint64_t> warmups{500, 2000};
    for (const std::string &x : opt.extra) {
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return x.compare(0, n, p) == 0 ? x.c_str() + n : nullptr;
        };
        if (const char *v = val("--detail="))
            detail = std::strtoull(v, nullptr, 0);
        else if (const char *v = val("--period="))
            periods = {std::strtoull(v, nullptr, 0)};
        else if (const char *v = val("--warmup="))
            warmups = {std::strtoull(v, nullptr, 0)};
        else
            fatal("unknown option '%s'", x.c_str());
    }

    struct Cfg
    {
        SamplingConfig s;
    };
    std::vector<Cfg> cfgs;
    for (uint64_t u : periods) {
        for (uint64_t w : warmups) {
            if (w + detail <= u)
                cfgs.push_back({SamplingConfig{u, detail, w}});
        }
    }
    if (cfgs.empty())
        fatal("no (period, warmup) pair fits --detail=%llu",
              static_cast<unsigned long long>(detail));

    // Per workload: full-detail FAC + baseline, then per config the
    // sampled pair. All batched through one parallel sweep.
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    const size_t stride = 2 * (1 + cfgs.size());
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        auto push = [&](bool fac, const SamplingConfig &s) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, CodeGenPolicy::withSupport());
            req.pipe = fac ? facPipelineConfig(32) : baselineConfig(32);
            req.maxInsts = opt.maxInsts;
            req.sampling = s;
            reqs.push_back(req);
        };
        push(true, SamplingConfig{});
        push(false, SamplingConfig{});
        for (const Cfg &c : cfgs) {
            push(true, c.s);
            push(false, c.s);
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "sampling");

    Table t;
    t.header({"Period", "Warmup", "Detail%", "CPIerrAvg%", "CPIerrMax%",
              "CIcover", "CIwidth%", "SpdErrMax", "HostSpeedup"});

    for (size_t ci = 0; ci < cfgs.size(); ++ci) {
        double err_sum = 0.0, err_max = 0.0, width_sum = 0.0;
        double spd_err_max = 0.0, detail_sum = 0.0;
        unsigned covered = 0;
        double full_host = 0.0, samp_host = 0.0;
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const size_t base = wi * stride;
            const TimingResult &fullFac = results[base];
            const TimingResult &fullBase = results[base + 1];
            const TimingResult &sampFac = results[base + 2 + 2 * ci];
            const TimingResult &sampBase = results[base + 3 + 2 * ci];

            double trueCpi = static_cast<double>(fullFac.stats.cycles) /
                fullFac.stats.insts;
            double estCpi = sampFac.sample.cpi.mean;
            double err = std::abs(estCpi - trueCpi) / trueCpi;
            err_sum += err;
            err_max = std::max(err_max, err);
            if (sampFac.sample.cpi.covers(trueCpi))
                ++covered;
            width_sum += sampFac.sample.cpi.relHalfWidth();
            detail_sum += sampFac.sample.detailFraction();

            double trueSpd = static_cast<double>(fullBase.stats.cycles) /
                fullFac.stats.cycles;
            double estSpd =
                sampBase.sample.estCycles() / sampFac.sample.estCycles();
            spd_err_max = std::max(spd_err_max,
                                   std::abs(estSpd - trueSpd));

            full_host += opt.report.perJob[base].wallSeconds +
                opt.report.perJob[base + 1].wallSeconds;
            samp_host += opt.report.perJob[base + 2 + 2 * ci].wallSeconds +
                opt.report.perJob[base + 3 + 2 * ci].wallSeconds;
        }
        const double n = static_cast<double>(workloads.size());
        t.row({std::to_string(cfgs[ci].s.period),
               std::to_string(cfgs[ci].s.warmup),
               fmtF(100.0 * detail_sum / n, 2),
               fmtF(100.0 * err_sum / n, 3), fmtF(100.0 * err_max, 3),
               strprintf("%u/%zu", covered, workloads.size()),
               fmtF(100.0 * width_sum / n, 3), fmtF(spd_err_max, 4),
               samp_host > 0.0 ? fmtF(full_host / samp_host, 1) : "-"});
    }

    emit(opt, "Sampling ablation: estimate error, CI quality and host "
              "speedup vs period/warmup (detail window " +
                  std::to_string(detail) + " insts)",
         t);
    return 0;
}
