/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: predictor
 * throughput, cache model throughput, functional emulation rate and
 * timing-pipeline rate. These guard against performance regressions in
 * the simulation infrastructure (the experiments above run hundreds of
 * millions of simulated instructions).
 */

#include <benchmark/benchmark.h>

#include "sim/config.hh"
#include "sim/machine.hh"
#include "cpu/pipeline.hh"
#include "util/rng.hh"

using namespace facsim;

namespace
{

void
BM_FacPredict(benchmark::State &state)
{
    FastAddrCalc fac(FacConfig{.blockBits = 5, .setBits = 14});
    Rng rng(1);
    std::vector<std::pair<uint32_t, int32_t>> inputs;
    for (int i = 0; i < 4096; ++i)
        inputs.emplace_back(static_cast<uint32_t>(rng.next()),
                            static_cast<int32_t>(rng.range(1 << 14)));
    size_t i = 0;
    for (auto _ : state) {
        auto [base, ofs] = inputs[i++ & 4095];
        benchmark::DoNotOptimize(fac.predict(base, ofs, false));
    }
}
BENCHMARK(BM_FacPredict);

void
BM_CacheRead(benchmark::State &state)
{
    Cache cache(CacheConfig{16 * 1024, 32, 1, 6});
    Rng rng(2);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(static_cast<uint32_t>(rng.range(64 * 1024)));
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.read(addrs[i++ & 4095]));
}
BENCHMARK(BM_CacheRead);

// Per-step emulation with a live ExecRecord — the profiling loops'
// inner path (Emulator::stepImpl<true>), as opposed to BM_EmulatorRate's
// record-free Emulator::run.
void
BM_EmulatorStep(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(workload("grep"), BuildOptions{});
        state.ResumeTiming();
        Emulator &emu = m.emulator();
        ExecRecord rec;
        uint64_t n = 0;
        while (n < 200'000 && emu.step(&rec))
            ++n;
        state.counters["insts"] = static_cast<double>(n);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_EmulatorStep)->Unit(benchmark::kMillisecond);

void
BM_EmulatorRate(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(workload("grep"), BuildOptions{});
        state.ResumeTiming();
        uint64_t n = m.emulator().run(200'000);
        state.counters["insts"] = static_cast<double>(n);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_EmulatorRate)->Unit(benchmark::kMillisecond);

void
BM_PipelineRate(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(workload("grep"), BuildOptions{});
        Pipeline pipe(facPipelineConfig(32), m.emulator());
        state.ResumeTiming();
        pipe.run(200'000);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_PipelineRate)->Unit(benchmark::kMillisecond);

// Timing model on the baseline (non-FAC) machine — the other half of
// every speedup experiment's work.
void
BM_PipelineRun(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(workload("grep"), BuildOptions{});
        Pipeline pipe(baselineConfig(32), m.emulator());
        state.ResumeTiming();
        pipe.run(200'000);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_PipelineRun)->Unit(benchmark::kMillisecond);

void
BM_MachineBuild(benchmark::State &state)
{
    for (auto _ : state) {
        Machine m(workload("tomcatv"), BuildOptions{});
        benchmark::DoNotOptimize(m.image().gpValue);
    }
}
BENCHMARK(BM_MachineBuild)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
