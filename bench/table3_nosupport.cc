/**
 * @file
 * Table 3 reproduction: program statistics *without* software support —
 * instructions, baseline cycles, loads, stores, I/D-cache miss ratios,
 * memory usage, and the prediction failure rates for loads and stores at
 * both 16- and 32-byte cache blocks.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "Insts", "Cycles", "Loads", "Stores",
              "I$miss%", "D$miss%", "Mem",
              "L16%", "S16%", "L32%", "S32%"});

    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> preqs;
    std::vector<TimingRequest> treqs;
    for (const WorkloadInfo *w : workloads) {
        // Functional profile with both predictor geometries at once.
        ProfileRequest preq;
        preq.workload = w->name;
        preq.build = buildOptions(opt, CodeGenPolicy::baseline());
        preq.facConfigs = {
            FacConfig{.blockBits = 4, .setBits = 14},
            FacConfig{.blockBits = 5, .setBits = 14},
        };
        preq.maxInsts = opt.maxInsts;
        preqs.push_back(preq);

        // One timing run on the baseline machine for the cycle count and
        // cache miss ratios.
        TimingRequest treq;
        treq.workload = w->name;
        treq.build = preq.build;
        treq.pipe = baselineConfig();
        treq.maxInsts = opt.maxInsts;
        treqs.push_back(treq);
    }
    std::vector<ProfileResult> profs = runAll(opt, preqs, "table3");
    std::vector<TimingResult> tims = runAll(opt, treqs, "table3");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const ProfileResult &prof = profs[wi];
        const TimingResult &tim = tims[wi];
        t.row({workloads[wi]->name, fmtCount(prof.insts),
               fmtCount(tim.stats.cycles),
               fmtCount(prof.loads), fmtCount(prof.stores),
               fmtPct(tim.stats.icacheMissRatio(), 2),
               fmtPct(tim.stats.dcacheMissRatio(), 2),
               fmtCount(tim.memUsageBytes),
               fmtPct(prof.fac[0].loadFailRate(), 1),
               fmtPct(prof.fac[0].storeFailRate(), 1),
               fmtPct(prof.fac[1].loadFailRate(), 1),
               fmtPct(prof.fac[1].storeFailRate(), 1)});
    }

    emit(opt, "Table 3: Program statistics without software support\n"
              "(L16/S16, L32/S32 = failed load/store predictions at 16- "
              "and 32-byte blocks)", t);
    return 0;
}
