/**
 * @file
 * Future-work extension (Section 5.4): "A strategy for placement of
 * large alignments should eliminate many array index failures", with
 * the footnote that "in the case of Spice aligning a single large array
 * to its size would eliminate nearly all mispredictions". This bench
 * measures prediction failure rates and speedups with the standard
 * software support versus support plus size-alignment of large statics
 * and heap objects, and the memory cost of doing so.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "SW fail%", "SW+LA fail%", "SW spd",
              "SW+LA spd", "Mem%"});

    const CodeGenPolicy sw = CodeGenPolicy::withSupport();
    const CodeGenPolicy la = CodeGenPolicy::withLargeAlignment();
    const FacConfig fc{.blockBits = 5, .setBits = 14};

    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> preqs;
    std::vector<TimingRequest> treqs;
    for (const WorkloadInfo *w : workloads) {
        for (const CodeGenPolicy &pol : {sw, la}) {
            ProfileRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, pol);
            req.facConfigs = {fc};
            req.maxInsts = opt.maxInsts;
            preqs.push_back(req);
        }
        // Timing order: baseline machine, then FAC on SW and SW+LA.
        const std::pair<CodeGenPolicy, PipelineConfig> timings[3] = {
            {CodeGenPolicy::baseline(), baselineConfig()},
            {sw, facPipelineConfig()},
            {la, facPipelineConfig()},
        };
        for (const auto &[pol, pipe] : timings) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, pol);
            req.pipe = pipe;
            req.maxInsts = opt.maxInsts;
            treqs.push_back(req);
        }
    }
    std::vector<ProfileResult> profs = runAll(opt, preqs, "largealign");
    std::vector<TimingResult> tims = runAll(opt, treqs, "largealign");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const ProfileResult &psw = profs[wi * 2];
        const ProfileResult &pla = profs[wi * 2 + 1];
        uint64_t base = tims[wi * 3].stats.cycles;
        uint64_t csw = tims[wi * 3 + 1].stats.cycles;
        uint64_t cla = tims[wi * 3 + 2].stats.cycles;

        t.row({workloads[wi]->name,
               fmtPct(psw.fac[0].loadFailRate(), 1),
               fmtPct(pla.fac[0].loadFailRate(), 1),
               fmtF(speedup(base, csw), 3),
               fmtF(speedup(base, cla), 3),
               fmtF(pctChange(psw.memUsageBytes, pla.memUsageBytes),
                    1)});
    }

    emit(opt, "Future work (Section 5.4): software support with large-"
              "alignment placement (SW+LA) — the paper's proposed fix "
              "for array-index failures", t);
    return 0;
}
