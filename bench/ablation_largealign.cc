/**
 * @file
 * Future-work extension (Section 5.4): "A strategy for placement of
 * large alignments should eliminate many array index failures", with
 * the footnote that "in the case of Spice aligning a single large array
 * to its size would eliminate nearly all mispredictions". This bench
 * measures prediction failure rates and speedups with the standard
 * software support versus support plus size-alignment of large statics
 * and heap objects, and the memory cost of doing so.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "SW fail%", "SW+LA fail%", "SW spd",
              "SW+LA spd", "Mem%"});

    for (const WorkloadInfo *w : selectedWorkloads(opt)) {
        FacConfig fc{.blockBits = 5, .setBits = 14};

        auto profileWith = [&](const CodeGenPolicy &pol) {
            ProfileRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, pol);
            req.facConfigs = {fc};
            req.maxInsts = opt.maxInsts;
            return runProfile(req);
        };
        auto timeWith = [&](const CodeGenPolicy &pol,
                            const PipelineConfig &pipe) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, pol);
            req.pipe = pipe;
            req.maxInsts = opt.maxInsts;
            return runTiming(req);
        };

        CodeGenPolicy sw = CodeGenPolicy::withSupport();
        CodeGenPolicy la = CodeGenPolicy::withLargeAlignment();

        ProfileResult psw = profileWith(sw);
        ProfileResult pla = profileWith(la);

        uint64_t base = timeWith(CodeGenPolicy::baseline(),
                                 baselineConfig()).stats.cycles;
        uint64_t csw = timeWith(sw, facPipelineConfig()).stats.cycles;
        uint64_t cla = timeWith(la, facPipelineConfig()).stats.cycles;

        t.row({w->name,
               fmtPct(psw.fac[0].loadFailRate(), 1),
               fmtPct(pla.fac[0].loadFailRate(), 1),
               fmtF(speedup(base, csw), 3),
               fmtF(speedup(base, cla), 3),
               fmtF(pctChange(psw.memUsageBytes, pla.memUsageBytes),
                    1)});
        std::fprintf(stderr, "largealign: %-10s done\n", w->name);
    }

    emit(opt, "Future work (Section 5.4): software support with large-"
              "alignment placement (SW+LA) — the paper's proposed fix "
              "for array-index failures", t);
    return 0;
}
