/**
 * @file
 * Section 6 related-work comparison: fast address calculation versus
 * the load target buffer (Golden & Mudge). The LTB predicts a memory
 * instruction's effective address from its PC (last-address or
 * last-address+stride); FAC predicts from the operands. The paper's
 * claim to check: FAC "is more accurate at predicting effective
 * addresses because we predict using the operands of the effective
 * address calculation, rather than the address of the load" — and it
 * needs no table at all.
 *
 * Failure rates are over all loads and stores, with the software
 * support enabled for FAC's column (its intended configuration) and the
 * same build measured for the LTBs.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "FAC/HW%", "FAC/SW%", "LTB-last%",
              "LTB-stride%", "LTB-last4k%"});

    for (const WorkloadInfo *w : selectedWorkloads(opt)) {
        auto profileWith = [&](const CodeGenPolicy &pol) {
            Machine m(workload(w->name), buildOptions(opt, pol));
            Profiler prof;
            prof.addFacConfig(FacConfig{.blockBits = 5, .setBits = 14});
            prof.addLtbConfig(1024, LtbPolicy::LastAddress);
            prof.addLtbConfig(1024, LtbPolicy::Stride);
            prof.addLtbConfig(4096, LtbPolicy::LastAddress);
            ExecRecord rec;
            Emulator &emu = m.emulator();
            while (emu.step(&rec)) {
                prof.observe(rec);
                if (opt.maxInsts && prof.insts() >= opt.maxInsts)
                    break;
            }
            return prof;
        };

        Profiler hw = profileWith(CodeGenPolicy::baseline());
        Profiler sw = profileWith(CodeGenPolicy::withSupport());

        auto facRate = [](const Profiler &p) {
            const FacProfile &f = p.fac(0);
            uint64_t attempts = f.loadAttempts + f.storeAttempts;
            uint64_t failures = f.loadFailures + f.storeFailures;
            return attempts ? static_cast<double>(failures) / attempts
                            : 0.0;
        };

        t.row({w->name,
               fmtPct(facRate(hw), 1),
               fmtPct(facRate(sw), 1),
               fmtPct(hw.ltb(0).failRate(), 1),
               fmtPct(hw.ltb(1).failRate(), 1),
               fmtPct(hw.ltb(2).failRate(), 1)});
        std::fprintf(stderr, "predictors: %-10s done\n", w->name);
    }

    emit(opt, "Related work (Section 6): effective-address prediction "
              "failure rates — fast address calculation vs load target "
              "buffers (1k/4k entries)", t);
    return 0;
}
