/**
 * @file
 * Section 6 related-work comparison: fast address calculation versus
 * the load target buffer (Golden & Mudge). The LTB predicts a memory
 * instruction's effective address from its PC (last-address or
 * last-address+stride); FAC predicts from the operands. The paper's
 * claim to check: FAC "is more accurate at predicting effective
 * addresses because we predict using the operands of the effective
 * address calculation, rather than the address of the load" — and it
 * needs no table at all.
 *
 * Failure rates are over all loads and stores, with the software
 * support enabled for FAC's column (its intended configuration) and the
 * same build measured for the LTBs.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "FAC/HW%", "FAC/SW%", "LTB-last%",
              "LTB-stride%", "LTB-last4k%"});

    // Per workload: hardware-only build, then with software support.
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (const CodeGenPolicy &pol : {CodeGenPolicy::baseline(),
                                         CodeGenPolicy::withSupport()}) {
            ProfileRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, pol);
            req.facConfigs = {FacConfig{.blockBits = 5, .setBits = 14}};
            req.ltbConfigs = {{1024, LtbPolicy::LastAddress},
                              {1024, LtbPolicy::Stride},
                              {4096, LtbPolicy::LastAddress}};
            req.maxInsts = opt.maxInsts;
            reqs.push_back(req);
        }
    }
    std::vector<ProfileResult> results = runAll(opt, reqs, "predictors");

    auto facRate = [](const ProfileResult &p) {
        const FacProfile &f = p.fac[0];
        uint64_t attempts = f.loadAttempts + f.storeAttempts;
        uint64_t failures = f.loadFailures + f.storeFailures;
        return attempts ? static_cast<double>(failures) / attempts : 0.0;
    };

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const ProfileResult &hw = results[wi * 2];
        const ProfileResult &sw = results[wi * 2 + 1];
        t.row({workloads[wi]->name,
               fmtPct(facRate(hw), 1),
               fmtPct(facRate(sw), 1),
               fmtPct(hw.ltb[0].failRate(), 1),
               fmtPct(hw.ltb[1].failRate(), 1),
               fmtPct(hw.ltb[2].failRate(), 1)});
    }

    emit(opt, "Related work (Section 6): effective-address prediction "
              "failure rates — fast address calculation vs load target "
              "buffers (1k/4k entries)", t);
    return 0;
}
