/**
 * @file
 * Section 6 related-work comparison, as a timing head-to-head: fast
 * address calculation versus the modern load-latency-reduction schemes
 * behind the same speculative-access/verify path (src/cpu/
 * load_predictor.hh). Per workload and per hierarchy preset (the
 * paper's flat 6-cycle machine and the `modern` L1+L2+DRAM one), every
 * `--predictor=` mode runs through the cycle-accurate pipeline and is
 * reported as a speedup over the predictor-less baseline:
 *
 *   fac        carry-free operand-based prediction (the paper);
 *   stride     PC-indexed base+stride table (PCAX/LTB style);
 *   fac+stride stride-confident-first arbitration over both;
 *   fac+waymemo / fac+stride+waymemo
 *              way memoization on confident FAC hits (skips the L1
 *              tag read; mandatory late verify).
 *
 * Detail columns: the stride run's misprediction rate and the
 * fac+waymemo run's skipped tag reads. All codegen uses the Section 4
 * software support (FAC's intended configuration) so the comparison
 * isolates the predictor, not the code layout. Per-predictor `pred.*`
 * stats ride into the --json output through the stats registry.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

namespace
{

/** Predictor modes in column order; modes[0] is the denominator. */
const char *const kModes[] = {"none",        "fac",
                              "stride",      "fac+stride",
                              "fac+waymemo", "fac+stride+waymemo"};
constexpr size_t kNumModes = std::size(kModes);

/** Hierarchy presets, in table order. */
const char *const kPresets[] = {"paper", "modern"};
constexpr size_t kNumPresets = std::size(kPresets);

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);

    // Request order: workload-major, then preset, then predictor mode.
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (const char *preset : kPresets) {
            for (const char *mode : kModes) {
                TimingRequest req;
                req.workload = w->name;
                req.build = buildOptions(opt, CodeGenPolicy::withSupport());
                req.pipe = predictorPipelineConfig(mode);
                req.pipe.hierarchy = hierarchyPreset(preset);
                req.maxInsts = opt.maxInsts;
                reqs.push_back(req);
            }
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "predictors");

    auto at = [&](size_t wi, size_t pi, size_t mi) -> const TimingResult & {
        return results[(wi * kNumPresets + pi) * kNumModes + mi];
    };

    std::vector<bool> is_fp;
    for (const WorkloadInfo *w : workloads)
        is_fp.push_back(w->floatingPoint);

    for (size_t pi = 0; pi < kNumPresets; ++pi) {
        Table t;
        t.header({"Benchmark", "FAC", "Stride", "FAC+Str", "FAC+Way",
                  "FAC+S+W", "StrFail%", "WaySaved"});

        // Run-time weights: the predictor-less baseline of this preset.
        std::vector<double> weights;
        std::vector<std::vector<double>> spd(kNumModes - 1);
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const TimingResult &base = at(wi, pi, 0);
            weights.push_back(static_cast<double>(base.stats.cycles));

            std::vector<std::string> row{workloads[wi]->name};
            for (size_t mi = 1; mi < kNumModes; ++mi) {
                spd[mi - 1].push_back(speedup(
                    base.stats.cycles, at(wi, pi, mi).stats.cycles));
                row.push_back(fmtF(spd[mi - 1].back(), 3));
            }
            const PipeStats &str = at(wi, pi, 2).stats;
            const PipeStats &way = at(wi, pi, 4).stats;
            row.push_back(fmtPct(str.strideFailRate(), 1));
            row.push_back(fmtCount(way.wayMemoTagReadsSaved));
            t.row(row);
        }

        if (opt.workloadFilter.empty()) {
            t.separator();
            for (bool fp : {false, true}) {
                std::vector<std::string> cells{fp ? "FP-Avg" : "Int-Avg"};
                for (const std::vector<double> &col : spd)
                    cells.push_back(
                        fmtF(groupAverage(col, weights, is_fp, fp), 3));
                cells.push_back("");
                cells.push_back("");
                t.row(cells);
            }
        }

        emit(opt, strprintf(
                 "Related work (Section 6): predictor-zoo timing "
                 "head-to-head on the '%s' hierarchy — speedup over the "
                 "predictor-less baseline for FAC, a PC-indexed stride "
                 "predictor, way memoization and their combinations "
                 "(stride misprediction rate and memoized tag-read "
                 "savings as detail)", kPresets[pi]),
             t);
    }
    return 0;
}
