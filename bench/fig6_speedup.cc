/**
 * @file
 * Figure 6 reproduction: execution speedups from fast address
 * calculation over the baseline model, as a function of software
 * support and cache block size (16/32 bytes), with run-time-weighted
 * Int-Avg / FP-Avg rows, plus the without-R+R-speculation columns (the
 * paper's dashed bars; suppress with --no-rr-delta). Pass --config to
 * print the Table 5 machine description.
 *
 * Shapes to check against the paper: consistent speedups for every
 * program; integer average roughly twice the FP average; HW+SW above
 * HW-only; small block-size effect; FAC(int) above the perfect-cache
 * potential of Figure 2.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    bool rr_delta = true;  // the paper's dashed bars; costs 2 extra runs
    for (const std::string &x : opt.extra) {
        if (x == "--config") {
            std::cout << describeConfig(facPipelineConfig(32));
            return 0;
        }
        if (x == "--no-rr-delta")
            rr_delta = false;
        if (x == "--rr-delta")
            rr_delta = true;
    }

    struct Cfg
    {
        const char *label;
        bool software;
        uint32_t block;
        bool specRR;
    };
    std::vector<Cfg> cfgs = {
        {"HW,16B", false, 16, true},
        {"HW+SW,16B", true, 16, true},
        {"HW,32B", false, 32, true},
        {"HW+SW,32B", true, 32, true},
    };
    if (rr_delta) {
        cfgs.push_back({"HW,32B,noRR", false, 32, false});
        cfgs.push_back({"HW+SW,32B,noRR", true, 32, false});
    }

    struct Row
    {
        const WorkloadInfo *w;
        uint64_t baseCycles;
        std::vector<double> speedups;
    };
    std::vector<Row> rows;

    // Per workload: two baselines (16B and 32B blocks, so the speedups
    // isolate fast address calculation from the block-size effect on
    // miss ratio), then one run per configuration.
    const size_t stride = 2 + cfgs.size();
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (int bi = 0; bi < 2; ++bi) {
            TimingRequest breq;
            breq.workload = w->name;
            breq.build = buildOptions(opt, CodeGenPolicy::baseline());
            breq.pipe = baselineConfig(bi == 0 ? 16 : 32);
            breq.maxInsts = opt.maxInsts;
            reqs.push_back(breq);
        }
        for (const Cfg &c : cfgs) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, c.software
                                     ? CodeGenPolicy::withSupport()
                                     : CodeGenPolicy::baseline());
            req.pipe = facPipelineConfig(c.block, c.specRR);
            req.maxInsts = opt.maxInsts;
            reqs.push_back(req);
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "fig6");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        Row r{workloads[wi], 0, {}};
        const TimingResult *res = &results[wi * stride];
        uint64_t base_cycles[2] = {res[0].stats.cycles,
                                   res[1].stats.cycles};
        r.baseCycles = base_cycles[1];  // 32B baseline weights the avgs
        for (size_t ci = 0; ci < cfgs.size(); ++ci) {
            uint64_t base = base_cycles[cfgs[ci].block == 16 ? 0 : 1];
            r.speedups.push_back(
                speedup(base, res[2 + ci].stats.cycles));
        }
        rows.push_back(r);
    }

    Table t;
    std::vector<std::string> hdr{"Benchmark"};
    for (const Cfg &c : cfgs)
        hdr.push_back(c.label);
    t.header(hdr);

    auto addAvg = [&](bool fp, const char *label) {
        std::vector<double> weights;
        std::vector<bool> is_fp;
        for (const Row &r : rows) {
            weights.push_back(static_cast<double>(r.baseCycles));
            is_fp.push_back(r.w->floatingPoint);
        }
        std::vector<std::string> cells{label};
        for (size_t c = 0; c < cfgs.size(); ++c) {
            std::vector<double> v;
            for (const Row &r : rows)
                v.push_back(r.speedups[c]);
            cells.push_back(fmtF(groupAverage(v, weights, is_fp, fp), 3));
        }
        t.row(cells);
    };

    bool did_int = false;
    for (const Row &r : rows) {
        if (r.w->floatingPoint && !did_int && opt.workloadFilter.empty()) {
            addAvg(false, "Int-Avg");
            t.separator();
            did_int = true;
        }
        std::vector<std::string> cells{r.w->name};
        for (double s : r.speedups)
            cells.push_back(fmtF(s, 3));
        t.row(cells);
    }
    if (opt.workloadFilter.empty())
        addAvg(true, "FP-Avg");

    emit(opt, "Figure 6: Speedups over the baseline model, with and "
              "without software support, 16/32-byte blocks", t);
    return 0;
}
