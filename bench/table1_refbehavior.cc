/**
 * @file
 * Table 1 reproduction: "Program Reference Behavior" — dynamic
 * instruction and reference counts plus the load breakdown by addressing
 * class (global / stack / general pointer). Pass --list to print the
 * Table 2 style workload inventory instead.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    for (const std::string &x : opt.extra) {
        if (x == "--list") {
            Table t;
            t.header({"Benchmark", "Group", "Modelled input"});
            for (const WorkloadInfo &w : allWorkloads())
                t.row({w.name, w.floatingPoint ? "FP" : "Int", w.input});
            emit(opt, "Table 2: Benchmark programs and their inputs", t);
            return 0;
        }
    }

    Table t;
    t.header({"Benchmark", "Insts", "Refs", "%Loads", "%Stores",
              "%Global", "%Stack", "%General"});
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        ProfileRequest req;
        req.workload = w->name;
        req.build = buildOptions(opt, CodeGenPolicy::baseline());
        req.maxInsts = opt.maxInsts;
        reqs.push_back(req);
    }
    std::vector<ProfileResult> results = runAll(opt, reqs, "table1");
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const ProfileResult &r = results[wi];
        uint64_t refs = r.loads + r.stores;
        t.row({workloads[wi]->name, fmtCount(r.insts), fmtCount(refs),
               fmtPct(static_cast<double>(r.loads) / r.insts, 1),
               fmtPct(static_cast<double>(r.stores) / r.insts, 1),
               fmtPct(r.fracGlobal, 1), fmtPct(r.fracStack, 1),
               fmtPct(r.fracGeneral, 1)});
    }

    emit(opt, "Table 1: Program reference behavior (loads broken down "
              "by addressing class)", t);
    return 0;
}
