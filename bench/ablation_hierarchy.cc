/**
 * @file
 * Memory-hierarchy ablation — Figure 6's headline speedup replayed on
 * machines the paper could not model. Three sweeps:
 *
 *  1. depth: the paper's flat 6-cycle machine vs the `modern` preset
 *     (16KB L1 + 256KB L2 + 80-cycle DRAM), with per-level miss ratios
 *     and DRAM traffic;
 *  2. L1 MSHR count {1,2,4,8} on the modern machine, with the merge
 *     count and peak occupancy at the largest file;
 *  3. DRAM latency {40,80,160,320} on the modern machine — the FAC
 *     speedup should shrink monotonically as misses dominate (the
 *     flat-machine trend of ablation_misslatency, re-derived on a
 *     hierarchy that actually filters misses through an L2).
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

namespace
{

/** Base/FAC timing request pair sharing one hierarchy config. */
void
pushPair(std::vector<TimingRequest> &reqs, const Options &opt,
         const WorkloadInfo *w, const HierarchyConfig &hier)
{
    for (bool fac_on : {false, true}) {
        TimingRequest req;
        req.workload = w->name;
        req.build = buildOptions(opt, CodeGenPolicy::withSupport());
        req.pipe = fac_on ? facPipelineConfig() : baselineConfig();
        req.pipe.hierarchy = hier;
        req.maxInsts = opt.maxInsts;
        reqs.push_back(req);
    }
}

/** Speedup of the FAC run over the base run of pair @p pi. */
double
pairSpeedup(const std::vector<TimingResult> &res, size_t pi)
{
    return speedup(res[pi * 2].stats.cycles, res[pi * 2 + 1].stats.cycles);
}

/** Append the paper-style Int-Avg / FP-Avg rows for @p cols speedups. */
void
averageRows(Table &t, const std::vector<const WorkloadInfo *> &workloads,
            const std::vector<std::vector<double>> &cols,
            const std::vector<double> &weights, size_t pad_cells = 0)
{
    std::vector<bool> is_fp;
    for (const WorkloadInfo *w : workloads)
        is_fp.push_back(w->floatingPoint);
    t.separator();
    for (bool fp : {false, true}) {
        std::vector<std::string> cells{fp ? "FP-Avg" : "Int-Avg"};
        for (const std::vector<double> &col : cols)
            cells.push_back(fmtF(groupAverage(col, weights, is_fp, fp), 3));
        for (size_t i = 0; i < pad_cells; ++i)
            cells.push_back("");
        t.row(cells);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);

    // --- Sweep 1: hierarchy depth (flat paper machine vs modern) ----
    std::vector<TimingRequest> dreqs;
    for (const WorkloadInfo *w : workloads) {
        pushPair(dreqs, opt, w, paperHierarchy());
        pushPair(dreqs, opt, w, modernHierarchy());
    }
    std::vector<TimingResult> dres = runAll(opt, dreqs, "hier-depth");

    // Per-workload weights for the group averages: flat baseline cycles
    // (the paper's run-time weighting).
    std::vector<double> weights;
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        weights.push_back(
            static_cast<double>(dres[wi * 4].stats.cycles));

    Table td;
    td.header({"Benchmark", "FlatSpd", "ModSpd", "L1miss%", "L2miss%",
               "DRAMrd", "DRAMq%"});
    std::vector<std::vector<double>> dspd(2);
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        // Per workload: flat base, flat FAC, modern base, modern FAC.
        const HierarchyStats &h = dres[wi * 4 + 2].hier;
        const DramStats &dram = h.dram;
        dspd[0].push_back(pairSpeedup(dres, wi * 2));
        dspd[1].push_back(pairSpeedup(dres, wi * 2 + 1));
        td.row({workloads[wi]->name,
                fmtF(dspd[0].back(), 3),
                fmtF(dspd[1].back(), 3),
                fmtPct(h.levels.at(0).missRatio, 2),
                fmtPct(h.levels.at(1).missRatio, 2),
                fmtCount(dram.reads),
                fmtPct(ratio(dram.queuedCycles,
                             dram.queuedCycles + dram.busyCycles), 1)});
    }
    if (opt.workloadFilter.empty())
        averageRows(td, workloads, dspd, weights, 4);
    emit(opt, "Hierarchy ablation 1: FAC speedup, flat (paper) vs "
              "modern (L1+L2+DRAM); modern-base per-level miss ratios "
              "and DRAM read traffic", td);

    // --- Sweep 2: L1 MSHR count on the modern machine ---------------
    const unsigned mshrs[] = {1, 2, 4, 8};
    constexpr size_t num_mshrs = std::size(mshrs);
    std::vector<TimingRequest> mreqs;
    for (const WorkloadInfo *w : workloads) {
        for (unsigned n : mshrs) {
            HierarchyConfig hier = modernHierarchy();
            hier.l1Mshr.entries = n;
            pushPair(mreqs, opt, w, hier);
        }
    }
    std::vector<TimingResult> mres = runAll(opt, mreqs, "hier-mshr");

    Table tm;
    std::vector<std::string> mhdr{"Benchmark"};
    for (unsigned n : mshrs)
        mhdr.push_back(strprintf("mshr=%u", n));
    mhdr.push_back("Merges");
    mhdr.push_back("PeakOcc");
    tm.header(mhdr);
    std::vector<std::vector<double>> mspd(num_mshrs);
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]->name};
        for (size_t mi = 0; mi < num_mshrs; ++mi) {
            mspd[mi].push_back(pairSpeedup(mres, wi * num_mshrs + mi));
            row.push_back(fmtF(mspd[mi].back(), 3));
        }
        // Merge/occupancy detail from the largest file's FAC run.
        const MshrStats &ms =
            mres[(wi * num_mshrs + num_mshrs - 1) * 2 + 1]
                .hier.levels.at(0).mshr;
        row.push_back(fmtCount(ms.merges));
        row.push_back(strprintf("%llu",
            static_cast<unsigned long long>(ms.maxOccupancy)));
        tm.row(row);
    }
    if (opt.workloadFilter.empty())
        averageRows(tm, workloads, mspd, weights, 2);
    emit(opt, "Hierarchy ablation 2: FAC speedup vs L1 MSHR entries "
              "(modern machine); secondary-miss merges and peak "
              "occupancy at the 8-entry file", tm);

    // --- Sweep 3: DRAM latency on the modern machine ----------------
    const unsigned dram_lats[] = {40, 80, 160, 320};
    constexpr size_t num_lats = std::size(dram_lats);
    std::vector<TimingRequest> lreqs;
    for (const WorkloadInfo *w : workloads) {
        for (unsigned lat : dram_lats) {
            HierarchyConfig hier = modernHierarchy();
            hier.dram.latency = lat;
            pushPair(lreqs, opt, w, hier);
        }
    }
    std::vector<TimingResult> lres = runAll(opt, lreqs, "hier-dram");

    Table tl;
    std::vector<std::string> lhdr{"Benchmark"};
    for (unsigned lat : dram_lats)
        lhdr.push_back(strprintf("dram=%u", lat));
    lhdr.push_back("Mono");
    tl.header(lhdr);
    std::vector<std::vector<double>> lspd(num_lats);
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]->name};
        std::vector<double> spd;
        for (size_t li = 0; li < num_lats; ++li) {
            spd.push_back(pairSpeedup(lres, wi * num_lats + li));
            lspd[li].push_back(spd.back());
            row.push_back(fmtF(spd.back(), 3));
        }
        // A 1-cycle address-calculation saving matters less and less as
        // DRAM stalls dominate; allow a little timing noise.
        row.push_back(isNonIncreasing(spd, 0.002) ? "yes" : "no");
        tl.row(row);
    }
    if (opt.workloadFilter.empty())
        averageRows(tl, workloads, lspd, weights, 1);
    emit(opt, "Hierarchy ablation 3: FAC speedup vs DRAM latency "
              "(modern machine) — expected monotonically non-increasing",
         tl);
    return 0;
}
