/**
 * @file
 * Store-buffer pressure ablation (Section 3.1's warning: "with
 * speculative cache accesses stealing away free cache cycles, the
 * processor may end up stalling more often on the store buffer").
 * Sweeps the buffer depth with and without store speculation and
 * reports full-buffer stalls and cycles. The paper measured the impact
 * of store-buffer stalls at "typically less than 1%" of the attained
 * speedup — checkable here.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "SB", "base stalls", "FAC stalls",
              "FAC cyc", "noStSpec cyc", "delta%"});

    const unsigned depths[] = {4, 8, 16};
    // Per (workload, depth): baseline, FAC, FAC-without-store-spec.
    const std::pair<bool, bool> variants[3] = {
        {false, true}, {true, true}, {true, false}};

    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (unsigned depth : depths) {
            for (const auto &[fac_on, spec_stores] : variants) {
                TimingRequest req;
                req.workload = w->name;
                req.build = buildOptions(opt, CodeGenPolicy::baseline());
                req.pipe = fac_on ? facPipelineConfig()
                                  : baselineConfig();
                req.pipe.storeBufferEntries = depth;
                req.pipe.speculateStores = spec_stores;
                req.maxInsts = opt.maxInsts;
                reqs.push_back(req);
            }
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "storebuf");

    size_t i = 0;
    for (const WorkloadInfo *w : workloads) {
        for (unsigned depth : depths) {
            const PipeStats &base = results[i++].stats;
            const PipeStats &fac = results[i++].stats;
            const PipeStats &nospec = results[i++].stats;
            double delta = pctChange(
                static_cast<double>(nospec.cycles),
                static_cast<double>(fac.cycles));
            t.row({w->name, strprintf("%u", depth),
                   fmtCount(base.storeBufferFullStalls),
                   fmtCount(fac.storeBufferFullStalls),
                   fmtCount(fac.cycles), fmtCount(nospec.cycles),
                   fmtF(delta, 2)});
        }
    }

    emit(opt, "Ablation (Section 3.1): store-buffer depth vs stalls, "
              "and the cycle cost/benefit of speculating stores "
              "(delta% = FAC-with-store-spec vs without)", t);
    return 0;
}
