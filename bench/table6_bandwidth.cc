/**
 * @file
 * Table 6 reproduction: memory-bandwidth overhead of speculation — the
 * mispredicted speculative cache accesses actually performed during the
 * timing run, as a percentage of total references, for the four corners
 * {R+R speculation, no R+R} x {hardware only, software support}.
 *
 * Shape to check: large overheads without software support (tens of
 * percent for the worst FP codes), a few percent with support, and
 * near-elimination once R+R speculation is disabled.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "RR/HW%", "RR/SW%", "noRR/HW%", "noRR/SW%"});

    // Corner order within each workload: {R+R, noR+R} x {HW, SW}.
    const std::pair<bool, bool> corners[4] = {
        {true, false}, {true, true}, {false, false}, {false, true}};

    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (const auto &[spec_rr, software] : corners) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, software
                                     ? CodeGenPolicy::withSupport()
                                     : CodeGenPolicy::baseline());
            req.pipe = facPipelineConfig(32, spec_rr);
            req.maxInsts = opt.maxInsts;
            reqs.push_back(req);
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "table6");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        auto overhead = [&](size_t corner) {
            return results[wi * 4 + corner].stats.bandwidthOverhead();
        };
        t.row({workloads[wi]->name,
               fmtPct(overhead(0), 2), fmtPct(overhead(1), 2),
               fmtPct(overhead(2), 2), fmtPct(overhead(3), 2)});
    }

    emit(opt, "Table 6: Memory bandwidth overhead — failed speculative "
              "cache accesses as a percentage of total references", t);
    return 0;
}
