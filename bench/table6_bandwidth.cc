/**
 * @file
 * Table 6 reproduction: memory-bandwidth overhead of speculation — the
 * mispredicted speculative cache accesses actually performed during the
 * timing run, as a percentage of total references, for the four corners
 * {R+R speculation, no R+R} x {hardware only, software support}.
 *
 * Shape to check: large overheads without software support (tens of
 * percent for the worst FP codes), a few percent with support, and
 * near-elimination once R+R speculation is disabled.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "RR/HW%", "RR/SW%", "noRR/HW%", "noRR/SW%"});

    for (const WorkloadInfo *w : selectedWorkloads(opt)) {
        auto overhead = [&](bool spec_rr, bool software) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, software
                                     ? CodeGenPolicy::withSupport()
                                     : CodeGenPolicy::baseline());
            req.pipe = facPipelineConfig(32, spec_rr);
            req.maxInsts = opt.maxInsts;
            return runTiming(req).stats.bandwidthOverhead();
        };
        t.row({w->name,
               fmtPct(overhead(true, false), 2),
               fmtPct(overhead(true, true), 2),
               fmtPct(overhead(false, false), 2),
               fmtPct(overhead(false, true), 2)});
        std::fprintf(stderr, "table6: %-10s done\n", w->name);
    }

    emit(opt, "Table 6: Memory bandwidth overhead — failed speculative "
              "cache accesses as a percentage of total references", t);
    return 0;
}
