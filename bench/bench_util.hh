/**
 * @file
 * Shared plumbing for the bench harnesses: command-line options, the
 * per-workload run loop, and the paper's run-time-weighted Int/FP
 * averaging.
 *
 * Common flags accepted by every bench:
 *   --csv              emit CSV instead of the aligned table
 *   --workload=NAME    restrict to one workload
 *   --scale=N          workload size multiplier (default 1)
 *   --max-insts=N      cap simulated instructions per run (0 = full run)
 *   --seed=N           workload data seed
 */

#ifndef FACSIM_BENCH_BENCH_UTIL_HH
#define FACSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/stats.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace facsim::bench
{

/** Parsed common options. */
struct Options
{
    bool csv = false;
    std::string workloadFilter;
    uint64_t scale = 1;
    uint64_t maxInsts = 0;
    uint64_t seed = 0x5eed;
    /** Flags the bench recognised beyond the common set. */
    std::vector<std::string> extra;
};

inline Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--csv") {
            o.csv = true;
        } else if (const char *v = val("--workload=")) {
            o.workloadFilter = v;
        } else if (const char *v = val("--scale=")) {
            o.scale = std::strtoull(v, nullptr, 0);
        } else if (const char *v = val("--max-insts=")) {
            o.maxInsts = std::strtoull(v, nullptr, 0);
        } else if (const char *v = val("--seed=")) {
            o.seed = std::strtoull(v, nullptr, 0);
        } else {
            o.extra.push_back(a);
        }
    }
    return o;
}

/** Workloads selected by the filter, in paper order. */
inline std::vector<const WorkloadInfo *>
selectedWorkloads(const Options &o)
{
    std::vector<const WorkloadInfo *> out;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (o.workloadFilter.empty() || o.workloadFilter == w.name)
            out.push_back(&w);
    }
    if (out.empty())
        fatal("no workload matches '%s'", o.workloadFilter.c_str());
    return out;
}

inline BuildOptions
buildOptions(const Options &o, const CodeGenPolicy &pol)
{
    BuildOptions b;
    b.policy = pol;
    b.scale = o.scale;
    b.seed = o.seed;
    return b;
}

/**
 * Run-time-weighted group average, as the paper's Int-Avg / FP-Avg bars:
 * weights are baseline cycle counts.
 */
inline double
groupAverage(const std::vector<double> &values,
             const std::vector<double> &weights,
             const std::vector<bool> &is_fp, bool want_fp)
{
    std::vector<double> v, w;
    for (size_t i = 0; i < values.size(); ++i) {
        if (is_fp[i] == want_fp) {
            v.push_back(values[i]);
            w.push_back(weights[i]);
        }
    }
    return weightedMean(v, w);
}

/** Print the table in the requested format, with a caption. */
inline void
emit(const Options &o, const std::string &caption, const Table &t)
{
    if (o.csv) {
        t.printCsv(std::cout);
    } else {
        std::cout << caption << "\n\n";
        t.print(std::cout);
        std::cout << "\n";
    }
}

} // namespace facsim::bench

#endif // FACSIM_BENCH_BENCH_UTIL_HH
