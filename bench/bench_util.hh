/**
 * @file
 * Shared plumbing for the bench harnesses: command-line options, the
 * per-workload run loop, and the paper's run-time-weighted Int/FP
 * averaging.
 *
 * Common flags accepted by every bench:
 *   --csv              emit CSV instead of the aligned table
 *   --workload=NAME    restrict to one workload
 *   --scale=N          workload size multiplier (default 1)
 *   --max-insts=N      cap simulated instructions per run (0 = full run)
 *   --seed=N           workload data seed
 *   --jobs=N           host threads for the experiment sweep
 *                      (default 0 = all hardware threads; results are
 *                      bitwise-identical for any N)
 *   --json=FILE        append one JSON object per emitted table to FILE
 *                      (rows plus host-time metadata), for
 *                      machine-readable perf trajectory tracking
 */

#ifndef FACSIM_BENCH_BENCH_UTIL_HH
#define FACSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/obs_views.hh"
#include "sim/runner.hh"
#include "sim/stats.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace facsim::bench
{

/** Parsed common options. */
struct Options
{
    bool csv = false;
    std::string workloadFilter;
    uint64_t scale = 1;
    uint64_t maxInsts = 0;
    uint64_t seed = 0x5eed;
    /** Host threads for runAll (0 = all hardware threads). */
    unsigned jobs = 0;
    /** When non-empty, emit() appends JSON results to this file. */
    std::string jsonPath;
    /** Flags the bench recognised beyond the common set. */
    std::vector<std::string> extra;
    /** Host-time accounting merged across every runAll() batch. */
    RunnerReport report;
    /**
     * Stats-registry accumulation across every runAll() batch; emitted
     * under the "stats" key of each --json line.
     */
    StatsAccum statsAccum;
};

inline Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--csv") {
            o.csv = true;
        } else if (const char *v = val("--workload=")) {
            o.workloadFilter = v;
        } else if (const char *v = val("--scale=")) {
            o.scale = std::strtoull(v, nullptr, 0);
        } else if (const char *v = val("--max-insts=")) {
            o.maxInsts = std::strtoull(v, nullptr, 0);
        } else if (const char *v = val("--seed=")) {
            o.seed = std::strtoull(v, nullptr, 0);
        } else if (const char *v = val("--jobs=")) {
            o.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (const char *v = val("--json=")) {
            o.jsonPath = v;
        } else {
            o.extra.push_back(a);
        }
    }
    return o;
}

/** Workloads selected by the filter, in paper order. */
inline std::vector<const WorkloadInfo *>
selectedWorkloads(const Options &o)
{
    std::vector<const WorkloadInfo *> out;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (o.workloadFilter.empty() || o.workloadFilter == w.name)
            out.push_back(&w);
    }
    if (out.empty())
        fatal("no workload matches '%s'", o.workloadFilter.c_str());
    return out;
}

inline BuildOptions
buildOptions(const Options &o, const CodeGenPolicy &pol)
{
    BuildOptions b;
    b.policy = pol;
    b.scale = o.scale;
    b.seed = o.seed;
    return b;
}

/**
 * Run-time-weighted group average, as the paper's Int-Avg / FP-Avg bars:
 * weights are baseline cycle counts.
 */
inline double
groupAverage(const std::vector<double> &values,
             const std::vector<double> &weights,
             const std::vector<bool> &is_fp, bool want_fp)
{
    std::vector<double> v, w;
    for (size_t i = 0; i < values.size(); ++i) {
        if (is_fp[i] == want_fp) {
            v.push_back(values[i]);
            w.push_back(weights[i]);
        }
    }
    return weightedMean(v, w);
}

/**
 * Fan a batch of timing requests across o.jobs host threads (see
 * sim/runner.hh for the determinism guarantee). Results come back in
 * request order; host-time accounting accumulates into o.report and a
 * one-line summary goes to stderr.
 */
inline std::vector<TimingResult>
runAll(Options &o, const std::vector<TimingRequest> &reqs,
       const char *tag = "bench")
{
    Runner runner(o.jobs);
    RunnerReport rep;
    std::vector<TimingResult> out = runner.runTimings(reqs, &rep);
    std::fprintf(stderr,
                 "%s: %zu timing runs on %u threads in %.2fs "
                 "(%.2fM sim-insts/s)\n",
                 tag, reqs.size(), rep.jobs, rep.wallSeconds,
                 rep.simInstsPerHostSecond() / 1e6);
    o.report.merge(rep);
    for (const TimingResult &r : out)
        o.statsAccum.add(r);
    return out;
}

/** Profile-run counterpart of runAll(Options&, TimingRequest...). */
inline std::vector<ProfileResult>
runAll(Options &o, const std::vector<ProfileRequest> &reqs,
       const char *tag = "bench")
{
    Runner runner(o.jobs);
    RunnerReport rep;
    std::vector<ProfileResult> out = runner.runProfiles(reqs, &rep);
    std::fprintf(stderr,
                 "%s: %zu profile runs on %u threads in %.2fs "
                 "(%.2fM sim-insts/s)\n",
                 tag, reqs.size(), rep.jobs, rep.wallSeconds,
                 rep.simInstsPerHostSecond() / 1e6);
    o.report.merge(rep);
    for (const ProfileResult &r : out)
        o.statsAccum.add(r);
    return out;
}

/** Escape a string for embedding in a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/**
 * Version of the JSON-lines schema emitJson() writes. v1 (implicit,
 * no schema_version key): caption/header/rows/meta. v2: adds
 * schema_version itself and the merged stats-registry dump under
 * "stats".
 */
constexpr unsigned benchJsonSchemaVersion = 2;

/**
 * Append one JSON object for @p t to @p o.jsonPath: schema version,
 * caption, header, rows (arrays of strings), the accumulated stats
 * registry and host-time metadata from o.report (jobs, wall seconds,
 * simulated instructions per host second). One object per line
 * (JSON-lines), truncating the file on the first emit of the process so
 * reruns do not accumulate.
 */
inline void
emitJson(const Options &o, const std::string &caption, const Table &t)
{
    static bool truncated = false;
    std::ofstream out(o.jsonPath, truncated ? std::ios::app
                                            : std::ios::trunc);
    truncated = true;
    if (!out)
        fatal("cannot write '%s'", o.jsonPath.c_str());

    out << "{\"schema_version\":" << benchJsonSchemaVersion << ",";
    out << "\"caption\":\"" << jsonEscape(caption) << "\",";
    out << "\"header\":[";
    const auto &hdr = t.headerCells();
    for (size_t i = 0; i < hdr.size(); ++i)
        out << (i ? "," : "") << '"' << jsonEscape(hdr[i]) << '"';
    out << "],\"rows\":[";
    const auto &rows = t.dataRows();
    for (size_t r = 0; r < rows.size(); ++r) {
        out << (r ? "," : "") << '[';
        for (size_t c = 0; c < rows[r].size(); ++c)
            out << (c ? "," : "") << '"' << jsonEscape(rows[r][c]) << '"';
        out << ']';
    }
    out << "],\"meta\":{";
    out << strprintf("\"jobs\":%u,\"runs\":%zu,\"wallSeconds\":%.6f,"
                     "\"simInsts\":%llu,\"simInstsPerHostSecond\":%.0f",
                     o.report.jobs, o.report.numJobs,
                     o.report.wallSeconds,
                     static_cast<unsigned long long>(o.report.simInsts),
                     o.report.simInstsPerHostSecond());
    out << "},\"stats\":" << o.statsAccum.statsJsonObject();
    out << "}\n";
}

/** Print the table in the requested format, with a caption. */
inline void
emit(const Options &o, const std::string &caption, const Table &t)
{
    if (!o.jsonPath.empty())
        emitJson(o, caption, t);
    if (o.csv) {
        t.printCsv(std::cout);
    } else {
        std::cout << caption << "\n\n";
        t.print(std::cout);
        std::cout << "\n";
    }
}

} // namespace facsim::bench

#endif // FACSIM_BENCH_BENCH_UTIL_HH
