/**
 * @file
 * Section 3.1 ablation: full addition capability in the tag portion of
 * the effective-address computation versus the cheaper OR-only tag. The
 * paper ran all experiments both ways and found full tag addition "of
 * limited value"; this bench reports both the prediction failure rates
 * and the resulting speedups so the claim can be checked directly.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "fail(full)%", "fail(OR)%", "spd(full)",
              "spd(OR)"});

    // Per workload: baseline timing, then FAC with/without full tag add.
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> preqs;
    std::vector<TimingRequest> treqs;
    for (const WorkloadInfo *w : workloads) {
        ProfileRequest preq;
        preq.workload = w->name;
        preq.build = buildOptions(opt, CodeGenPolicy::baseline());
        preq.facConfigs = {
            FacConfig{.blockBits = 5, .setBits = 14, .fullTagAdd = true},
            FacConfig{.blockBits = 5, .setBits = 14, .fullTagAdd = false},
        };
        preq.maxInsts = opt.maxInsts;
        preqs.push_back(preq);

        TimingRequest breq;
        breq.workload = w->name;
        breq.build = preq.build;
        breq.pipe = baselineConfig();
        breq.maxInsts = opt.maxInsts;
        treqs.push_back(breq);
        for (bool full_tag : {true, false}) {
            TimingRequest req;
            req.workload = w->name;
            req.build = preq.build;
            req.pipe = facPipelineConfig(32, true, full_tag);
            req.maxInsts = opt.maxInsts;
            treqs.push_back(req);
        }
    }
    std::vector<ProfileResult> profs = runAll(opt, preqs, "ablation");
    std::vector<TimingResult> tims = runAll(opt, treqs, "ablation");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const ProfileResult &prof = profs[wi];
        uint64_t base_cycles = tims[wi * 3].stats.cycles;
        t.row({workloads[wi]->name,
               fmtPct(prof.fac[0].loadFailRate(), 2),
               fmtPct(prof.fac[1].loadFailRate(), 2),
               fmtF(speedup(base_cycles, tims[wi * 3 + 1].stats.cycles),
                    3),
               fmtF(speedup(base_cycles, tims[wi * 3 + 2].stats.cycles),
                    3)});
    }

    emit(opt, "Ablation (Section 3.1): full tag addition vs OR-only tag "
              "(load failure rates and speedups, HW only, 32B blocks)",
         t);
    return 0;
}
