/**
 * @file
 * Section 3.1 ablation: full addition capability in the tag portion of
 * the effective-address computation versus the cheaper OR-only tag. The
 * paper ran all experiments both ways and found full tag addition "of
 * limited value"; this bench reports both the prediction failure rates
 * and the resulting speedups so the claim can be checked directly.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "fail(full)%", "fail(OR)%", "spd(full)",
              "spd(OR)"});

    for (const WorkloadInfo *w : selectedWorkloads(opt)) {
        ProfileRequest preq;
        preq.workload = w->name;
        preq.build = buildOptions(opt, CodeGenPolicy::baseline());
        preq.facConfigs = {
            FacConfig{.blockBits = 5, .setBits = 14, .fullTagAdd = true},
            FacConfig{.blockBits = 5, .setBits = 14, .fullTagAdd = false},
        };
        preq.maxInsts = opt.maxInsts;
        ProfileResult prof = runProfile(preq);

        TimingRequest breq;
        breq.workload = w->name;
        breq.build = preq.build;
        breq.pipe = baselineConfig();
        breq.maxInsts = opt.maxInsts;
        uint64_t base_cycles = runTiming(breq).stats.cycles;

        auto spd = [&](bool full_tag) {
            TimingRequest req;
            req.workload = w->name;
            req.build = preq.build;
            req.pipe = facPipelineConfig(32, true, full_tag);
            req.maxInsts = opt.maxInsts;
            return speedup(base_cycles, runTiming(req).stats.cycles);
        };

        t.row({w->name,
               fmtPct(prof.fac[0].loadFailRate(), 2),
               fmtPct(prof.fac[1].loadFailRate(), 2),
               fmtF(spd(true), 3), fmtF(spd(false), 3)});
        std::fprintf(stderr, "ablation: %-10s done\n", w->name);
    }

    emit(opt, "Ablation (Section 3.1): full tag addition vs OR-only tag "
              "(load failure rates and speedups, HW only, 32B blocks)",
         t);
    return 0;
}
