/**
 * @file
 * Miss-latency ablation — the historical perspective. The paper's 1995
 * machine had a 6-cycle miss penalty, making the 1-cycle address-
 * calculation saving a large fraction of total memory stall time. As
 * the processor/memory gap grew, misses came to dominate and the
 * technique's headroom shrank (one reason fast address calculation is
 * absent from later designs, which spent the effort on out-of-order
 * load scheduling instead). This bench replays Figure 6's headline
 * configuration across miss latencies.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    const unsigned latencies[] = {2, 6, 20, 50};

    Table t;
    std::vector<std::string> hdr{"Benchmark"};
    for (unsigned l : latencies)
        hdr.push_back(strprintf("miss=%u", l));
    t.header(hdr);

    std::vector<std::vector<double>> spd(std::size(latencies));
    std::vector<double> weights;
    std::vector<bool> is_fp;

    // Per (workload, latency): base then FAC timings.
    constexpr size_t num_lats = std::size(latencies);
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (unsigned lat : latencies) {
            for (bool fac_on : {false, true}) {
                TimingRequest req;
                req.workload = w->name;
                req.build = buildOptions(opt,
                                         CodeGenPolicy::withSupport());
                req.pipe = fac_on ? facPipelineConfig() : baselineConfig();
                req.pipe.dcache.missLatency = lat;
                req.pipe.icache.missLatency = lat;
                req.maxInsts = opt.maxInsts;
                reqs.push_back(req);
            }
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "misslat");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]->name};
        for (size_t li = 0; li < num_lats; ++li) {
            uint64_t base =
                results[(wi * num_lats + li) * 2].stats.cycles;
            uint64_t fac =
                results[(wi * num_lats + li) * 2 + 1].stats.cycles;
            double s = speedup(base, fac);
            spd[li].push_back(s);
            if (li == 0) {
                weights.push_back(static_cast<double>(base));
                is_fp.push_back(workloads[wi]->floatingPoint);
            }
            row.push_back(fmtF(s, 3));
        }
        t.row(row);
    }

    if (opt.workloadFilter.empty()) {
        t.separator();
        for (bool fp : {false, true}) {
            std::vector<std::string> cells{fp ? "FP-Avg" : "Int-Avg"};
            for (size_t li = 0; li < std::size(latencies); ++li)
                cells.push_back(
                    fmtF(groupAverage(spd[li], weights, is_fp, fp), 3));
            t.row(cells);
        }
    }

    emit(opt, "Ablation: FAC speedup (HW+SW, 32B blocks) vs cache miss "
              "latency — the technique's headroom shrinks as misses "
              "dominate", t);
    return 0;
}
