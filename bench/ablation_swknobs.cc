/**
 * @file
 * Software-support decomposition (Section 4 has one subsection per
 * mechanism): measures the load prediction failure rate with each
 * mechanism enabled alone — global-pointer alignment (linker), stack
 * alignment + frame sorting (compiler), heap/static allocation
 * alignment + structure rounding (allocator) — and all together. Shows
 * which accesses each mechanism rescues per workload.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

namespace
{

CodeGenPolicy
gpOnly()
{
    CodeGenPolicy p = CodeGenPolicy::baseline();
    p.link.alignGlobalPointer = true;
    return p;
}

CodeGenPolicy
stackOnly()
{
    CodeGenPolicy p = CodeGenPolicy::baseline();
    p.stack = StackPolicy{.spAlign = 64, .maxFrameAlign = 256,
                          .explicitAlignBigFrames = true};
    p.sortFrameScalars = true;
    return p;
}

CodeGenPolicy
allocOnly()
{
    CodeGenPolicy p = CodeGenPolicy::baseline();
    p.heap = HeapPolicy{.minAlign = 32};
    p.link.alignStatics = true;
    p.roundStructs = true;
    return p;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "none%", "gp%", "stack%", "alloc%", "all%"});

    const std::pair<const char *, CodeGenPolicy> policies[] = {
        {"none", CodeGenPolicy::baseline()},
        {"gp", gpOnly()},
        {"stack", stackOnly()},
        {"alloc", allocOnly()},
        {"all", CodeGenPolicy::withSupport()},
    };

    constexpr size_t num_policies = std::size(policies);
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (const auto &[label, pol] : policies) {
            ProfileRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, pol);
            req.facConfigs = {FacConfig{.blockBits = 5, .setBits = 14}};
            req.maxInsts = opt.maxInsts;
            reqs.push_back(req);
        }
    }
    std::vector<ProfileResult> results = runAll(opt, reqs, "swknobs");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]->name};
        for (size_t pi = 0; pi < num_policies; ++pi)
            row.push_back(fmtPct(
                results[wi * num_policies + pi].fac[0].loadFailRate(),
                1));
        t.row(row);
    }

    emit(opt, "Ablation (Section 4): load prediction failure rate with "
              "each software-support mechanism enabled alone (32B "
              "blocks)", t);
    return 0;
}
