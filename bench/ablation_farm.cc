/**
 * @file
 * Live-point farm ablation: accuracy and host cost of the library-based
 * sampling farm (sim/lvpt.hh) against the serial SMARTS sampler
 * (sim/sampling.hh) it replaces.
 *
 * For every workload the harness runs the FAC machine and the baseline
 * in full detail (the reference truth), then the serial sampler over
 * both configs, then cuts a live-point library once and farms a
 * matched-pair FAC-vs-baseline sweep from it. Reported per workload:
 * the true speedup, the serial and farm speedup estimates with their
 * absolute errors, the matched-pair CI half-width next to the
 * independent-quadrature one (the narrowing the shared live-points
 * buy), the one-time library build cost, the farm throughput in
 * live-points per second, and the marginal host speedup of the farm
 * sweep over the serial sampled pair.
 *
 * Shapes to check: farm speedup error tracking the serial sampler's
 * (same windows, same estimator — the library pass is not an
 * approximation); the paired CI several times narrower than the
 * independent one; farm wall clock dominated by the detailed windows,
 * so the marginal host speedup approaches 1x on one thread and scales
 * with --jobs elsewhere.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include <unistd.h>

#include "bench_util.hh"
#include "sim/lvpt.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    SamplingConfig s;
    s.period = 25000;
    s.detail = 1000;
    s.warmup = 2000;
    for (const std::string &x : opt.extra) {
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return x.compare(0, n, p) == 0 ? x.c_str() + n : nullptr;
        };
        if (const char *v = val("--period="))
            s.period = std::strtoull(v, nullptr, 0);
        else if (const char *v = val("--detail="))
            s.detail = std::strtoull(v, nullptr, 0);
        else if (const char *v = val("--warmup="))
            s.warmup = std::strtoull(v, nullptr, 0);
        else
            fatal("unknown option '%s'", x.c_str());
    }
    s.validate();

    // Reference truth and the serial sampler, batched across workloads:
    // full FAC, full baseline, sampled FAC, sampled baseline.
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    const size_t stride = 4;
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        auto push = [&](bool fac, const SamplingConfig &sc) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, CodeGenPolicy::withSupport());
            req.pipe = fac ? facPipelineConfig(32) : baselineConfig(32);
            req.maxInsts = opt.maxInsts;
            req.sampling = sc;
            reqs.push_back(req);
        };
        push(true, SamplingConfig{});
        push(false, SamplingConfig{});
        push(true, s);
        push(false, s);
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "farm");

    Table t;
    t.header({"Workload", "TrueSpd", "SerialSpd", "FarmSpd", "SpdErr",
              "PairCI", "IndepCI", "Lib(s)", "Farm(lp/s)", "Host"});

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const size_t base = wi * stride;
        const TimingResult &fullFac = results[base];
        const TimingResult &fullBase = results[base + 1];
        const TimingResult &sampFac = results[base + 2];
        const TimingResult &sampBase = results[base + 3];

        // One-time library pass (host-timed), then the matched-pair
        // sweep from it. The library is scratch: per-process temp path.
        std::string libPath = strprintf("%s/facsim_farm_%d_%s.lvpt",
                                        P_tmpdir, getpid(),
                                        workloads[wi]->name);
        LvptBuildRequest breq;
        breq.workload = workloads[wi]->name;
        breq.build = buildOptions(opt, CodeGenPolicy::withSupport());
        breq.pipe = baselineConfig(32);
        breq.sampling = s;
        breq.maxInsts = opt.maxInsts;
        auto t0 = std::chrono::steady_clock::now();
        buildLvptLibrary(libPath, breq);
        double libSecs = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();

        LvptLibrary lib(libPath);
        FarmRequest freq;
        freq.pipe = facPipelineConfig(32);
        freq.partner = baselineConfig(32);
        freq.matchedPair = true;
        freq.jobs = opt.jobs;
        FarmResult fr = runFarm(lib, freq);
        std::remove(libPath.c_str());

        double trueSpd = static_cast<double>(fullBase.stats.cycles) /
            fullFac.stats.cycles;
        double serialSpd =
            sampBase.sample.estCycles() / sampFac.sample.estCycles();
        double farmSpd = fr.pairedSpeedup.mean;

        // Marginal per-config-pair cost: the serial sampled pair's host
        // time vs the farm sweep's (library cost is amortised across
        // every sweep config and reported separately).
        double serialHost = opt.report.perJob[base + 2].wallSeconds +
            opt.report.perJob[base + 3].wallSeconds;
        double farmHost = fr.report.wallSeconds;

        t.row({workloads[wi]->name, fmtF(trueSpd, 4), fmtF(serialSpd, 4),
               fmtF(farmSpd, 4), fmtF(std::abs(farmSpd - trueSpd), 4),
               fmtF(fr.pairedSpeedup.halfWidth, 4),
               fmtF(fr.independentSpeedup.halfWidth, 4),
               fmtF(libSecs, 2), fmtF(fr.jobsPerSecond(), 0),
               farmHost > 0.0 ? fmtF(serialHost / farmHost, 1) : "-"});
    }

    emit(opt, strprintf("Live-point farm vs serial sampler: speedup "
                        "accuracy, matched-pair CI narrowing and host "
                        "cost (period %llu, detail %llu, warmup %llu)",
                        static_cast<unsigned long long>(s.period),
                        static_cast<unsigned long long>(s.detail),
                        static_cast<unsigned long long>(s.warmup)),
         t);
    return 0;
}
