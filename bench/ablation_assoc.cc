/**
 * @file
 * Associativity ablation. The prediction field widths follow the cache
 * geometry: 2^S = size / associativity, so every doubling of
 * associativity removes one carry-free OR bit from the set-index field
 * and pushes it into the tag (Section 3's address split). This bench
 * quantifies the interplay: higher associativity lowers the miss ratio
 * but shrinks the field the software support aligns for, so prediction
 * accuracy (and FAC's gain) can move either way.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "assoc", "S", "D$miss%", "fail%", "spd"});

    const uint32_t assocs[] = {1, 2, 4};
    constexpr size_t num_assocs = std::size(assocs);

    // Per (workload, assoc): one profile, then base and FAC timings.
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> preqs;
    std::vector<TimingRequest> treqs;
    for (const WorkloadInfo *w : workloads) {
        for (uint32_t assoc : assocs) {
            CacheConfig dcache{16 * 1024, 32, assoc, 6};
            FacConfig fc = facConfigFor(dcache);

            ProfileRequest preq;
            preq.workload = w->name;
            preq.build = buildOptions(opt, CodeGenPolicy::withSupport());
            preq.facConfigs = {fc};
            preq.maxInsts = opt.maxInsts;
            preqs.push_back(preq);

            for (bool fac_on : {false, true}) {
                TimingRequest req;
                req.workload = w->name;
                req.build = preq.build;
                req.pipe = fac_on ? facPipelineConfig() : baselineConfig();
                req.pipe.dcache = dcache;
                if (fac_on)
                    req.pipe.fac = fc;
                req.maxInsts = opt.maxInsts;
                treqs.push_back(req);
            }
        }
    }
    std::vector<ProfileResult> profs = runAll(opt, preqs, "assoc");
    std::vector<TimingResult> tims = runAll(opt, treqs, "assoc");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        for (size_t ai = 0; ai < num_assocs; ++ai) {
            const size_t pi = wi * num_assocs + ai;
            const ProfileResult &prof = profs[pi];
            const PipeStats &base = tims[pi * 2].stats;
            const PipeStats &fac = tims[pi * 2 + 1].stats;
            FacConfig fc =
                facConfigFor(CacheConfig{16 * 1024, 32, assocs[ai], 6});

            t.row({workloads[wi]->name, strprintf("%u-way", assocs[ai]),
                   strprintf("%u", fc.setBits),
                   fmtPct(base.dcacheMissRatio(), 2),
                   fmtPct(prof.fac[0].loadFailRate(), 1),
                   fmtF(speedup(base.cycles, fac.cycles), 3)});
        }
    }

    emit(opt, "Ablation: associativity vs the prediction field split "
              "(with software support, 32B blocks)", t);
    return 0;
}
