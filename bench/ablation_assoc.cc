/**
 * @file
 * Associativity ablation. The prediction field widths follow the cache
 * geometry: 2^S = size / associativity, so every doubling of
 * associativity removes one carry-free OR bit from the set-index field
 * and pushes it into the tag (Section 3's address split). This bench
 * quantifies the interplay: higher associativity lowers the miss ratio
 * but shrinks the field the software support aligns for, so prediction
 * accuracy (and FAC's gain) can move either way.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "assoc", "S", "D$miss%", "fail%", "spd"});

    const uint32_t assocs[] = {1, 2, 4};

    for (const WorkloadInfo *w : selectedWorkloads(opt)) {
        for (uint32_t assoc : assocs) {
            CacheConfig dcache{16 * 1024, 32, assoc, 6};
            FacConfig fc = facConfigFor(dcache);

            ProfileRequest preq;
            preq.workload = w->name;
            preq.build = buildOptions(opt, CodeGenPolicy::withSupport());
            preq.facConfigs = {fc};
            preq.maxInsts = opt.maxInsts;
            ProfileResult prof = runProfile(preq);

            auto timeWith = [&](bool fac_on) {
                TimingRequest req;
                req.workload = w->name;
                req.build = buildOptions(opt,
                                         CodeGenPolicy::withSupport());
                req.pipe = fac_on ? facPipelineConfig() : baselineConfig();
                req.pipe.dcache = dcache;
                if (fac_on)
                    req.pipe.fac = fc;
                req.maxInsts = opt.maxInsts;
                return runTiming(req).stats;
            };
            PipeStats base = timeWith(false);
            PipeStats fac = timeWith(true);

            t.row({w->name, strprintf("%u-way", assoc),
                   strprintf("%u", fc.setBits),
                   fmtPct(base.dcacheMissRatio(), 2),
                   fmtPct(prof.fac[0].loadFailRate(), 1),
                   fmtF(speedup(base.cycles, fac.cycles), 3)});
        }
        std::fprintf(stderr, "assoc: %-10s done\n", w->name);
    }

    emit(opt, "Ablation: associativity vs the prediction field split "
              "(with software support, 32B blocks)", t);
    return 0;
}
