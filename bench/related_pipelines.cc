/**
 * @file
 * Section 6 pipeline-organisation comparison: the traditional LUI
 * pipeline (Table 5 baseline), the AGI organisation (address generation
 * stage + ALU moved down, as in Jouppi's MultiTitan and the TFP), and
 * the LUI pipeline with fast address calculation. Golden & Mudge found
 * AGI only "slightly better" than LUI with good branch prediction, and
 * both "still suffer from many untolerated load latencies" — the gap
 * FAC closes.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "LUI cyc", "AGI spd", "FAC spd",
              "AGI addr-hazard?"});

    std::vector<double> agi_spd, fac_spd, weights;
    std::vector<bool> is_fp;

    for (const WorkloadInfo *w : selectedWorkloads(opt)) {
        auto cycles = [&](const PipelineConfig &pc) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, CodeGenPolicy::baseline());
            req.pipe = pc;
            req.maxInsts = opt.maxInsts;
            return runTiming(req).stats.cycles;
        };

        uint64_t lui = cycles(baselineConfig());
        uint64_t agi = cycles(agiConfig());
        uint64_t fac = cycles(facPipelineConfig());

        double sa = speedup(lui, agi);
        double sf = speedup(lui, fac);
        agi_spd.push_back(sa);
        fac_spd.push_back(sf);
        weights.push_back(static_cast<double>(lui));
        is_fp.push_back(w->floatingPoint);

        t.row({w->name, fmtCount(lui), fmtF(sa, 3), fmtF(sf, 3),
               sa < 1.0 ? "yes" : "no"});
        std::fprintf(stderr, "pipelines: %-10s done\n", w->name);
    }

    if (opt.workloadFilter.empty()) {
        t.separator();
        for (bool fp : {false, true}) {
            t.row({fp ? "FP-Avg" : "Int-Avg", "-",
                   fmtF(groupAverage(agi_spd, weights, is_fp, fp), 3),
                   fmtF(groupAverage(fac_spd, weights, is_fp, fp), 3),
                   ""});
        }
    }

    emit(opt, "Related work (Section 6): pipeline organisations — AGI "
              "and FAC speedups over the traditional LUI pipeline "
              "(hardware only, 32B blocks)", t);
    return 0;
}
