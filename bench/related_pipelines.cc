/**
 * @file
 * Section 6 pipeline-organisation comparison: the traditional LUI
 * pipeline (Table 5 baseline), the AGI organisation (address generation
 * stage + ALU moved down, as in Jouppi's MultiTitan and the TFP), and
 * the LUI pipeline with fast address calculation. Golden & Mudge found
 * AGI only "slightly better" than LUI with good branch prediction, and
 * both "still suffer from many untolerated load latencies" — the gap
 * FAC closes.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    Table t;
    t.header({"Benchmark", "LUI cyc", "AGI spd", "FAC spd",
              "AGI addr-hazard?"});

    std::vector<double> agi_spd, fac_spd, weights;
    std::vector<bool> is_fp;

    // Per workload: LUI baseline, AGI, then FAC.
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (const PipelineConfig &pc :
             {baselineConfig(), agiConfig(), facPipelineConfig()}) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, CodeGenPolicy::baseline());
            req.pipe = pc;
            req.maxInsts = opt.maxInsts;
            reqs.push_back(req);
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "pipelines");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        uint64_t lui = results[wi * 3].stats.cycles;
        uint64_t agi = results[wi * 3 + 1].stats.cycles;
        uint64_t fac = results[wi * 3 + 2].stats.cycles;

        double sa = speedup(lui, agi);
        double sf = speedup(lui, fac);
        agi_spd.push_back(sa);
        fac_spd.push_back(sf);
        weights.push_back(static_cast<double>(lui));
        is_fp.push_back(workloads[wi]->floatingPoint);

        t.row({workloads[wi]->name, fmtCount(lui), fmtF(sa, 3),
               fmtF(sf, 3), sa < 1.0 ? "yes" : "no"});
    }

    if (opt.workloadFilter.empty()) {
        t.separator();
        for (bool fp : {false, true}) {
            t.row({fp ? "FP-Avg" : "Int-Avg", "-",
                   fmtF(groupAverage(agi_spd, weights, is_fp, fp), 3),
                   fmtF(groupAverage(fac_spd, weights, is_fp, fp), 3),
                   ""});
        }
    }

    emit(opt, "Related work (Section 6): pipeline organisations — AGI "
              "and FAC speedups over the traditional LUI pipeline "
              "(hardware only, 32B blocks)", t);
    return 0;
}
