/**
 * @file
 * Table 4 reproduction: program statistics *with* software support —
 * percent changes in instructions, cycles, loads, stores and memory
 * usage relative to the unsupported build, absolute I/D miss-ratio
 * deltas, and the with-support prediction failure rates (All and
 * No R+R) at 32-byte blocks. Pass --tlb to additionally run the
 * Section 5.4 data-TLB comparison; that also emits a second table with
 * the raw per-build TLB probe/miss counters.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    bool with_tlb = false;
    for (const std::string &x : opt.extra)
        if (x == "--tlb")
            with_tlb = true;

    Table t;
    std::vector<std::string> hdr{
        "Benchmark", "Insts%", "Cycles%", "Loads%", "Stores%",
        "dI$miss", "dD$miss", "Mem%", "L-All%", "S-All%", "L-NoRR%",
        "S-NoRR%"};
    if (with_tlb)
        hdr.push_back("dTLBmiss");
    t.header(hdr);

    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<ProfileRequest> preqs;
    std::vector<TimingRequest> treqs;
    for (const WorkloadInfo *w : workloads) {
        FacConfig fc{.blockBits = 5, .setBits = 14};
        for (const CodeGenPolicy &pol : {CodeGenPolicy::baseline(),
                                         CodeGenPolicy::withSupport()}) {
            ProfileRequest preq;
            preq.workload = w->name;
            preq.build = buildOptions(opt, pol);
            preq.facConfigs = {fc};
            preq.withTlb = with_tlb;
            preq.maxInsts = opt.maxInsts;
            preqs.push_back(preq);

            TimingRequest treq;
            treq.workload = w->name;
            treq.build = buildOptions(opt, pol);
            treq.pipe = baselineConfig();
            treq.maxInsts = opt.maxInsts;
            treqs.push_back(treq);
        }
    }
    std::vector<ProfileResult> profs = runAll(opt, preqs, "table4");
    std::vector<TimingResult> tims = runAll(opt, treqs, "table4");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const WorkloadInfo *w = workloads[wi];
        const ProfileResult &pb = profs[wi * 2];
        const ProfileResult &ps = profs[wi * 2 + 1];
        const TimingResult &tb = tims[wi * 2];
        const TimingResult &ts = tims[wi * 2 + 1];

        std::vector<std::string> row{
            w->name,
            fmtF(pctChange(pb.insts, ps.insts), 1),
            fmtF(pctChange(tb.stats.cycles, ts.stats.cycles), 1),
            fmtF(pctChange(pb.loads, ps.loads), 1),
            fmtF(pctChange(pb.stores, ps.stores), 1),
            fmtF((ts.stats.icacheMissRatio() -
                  tb.stats.icacheMissRatio()) * 100.0, 2),
            fmtF((ts.stats.dcacheMissRatio() -
                  tb.stats.dcacheMissRatio()) * 100.0, 2),
            fmtF(pctChange(pb.memUsageBytes, ps.memUsageBytes), 1),
            fmtPct(ps.fac[0].loadFailRate(), 1),
            fmtPct(ps.fac[0].storeFailRate(), 1),
            fmtPct(ps.fac[0].loadFailRateNoRR(), 1),
            fmtPct(ps.fac[0].storeFailRateNoRR(), 1)};
        if (with_tlb)
            row.push_back(fmtF((ps.tlbMissRatio - pb.tlbMissRatio) *
                               100.0, 3));
        t.row(row);
    }

    emit(opt, "Table 4: Program statistics with software support "
              "(changes vs. Table 3; failure rates at 32-byte blocks)",
         t);

    if (with_tlb) {
        Table tt;
        tt.header({"Benchmark", "BaseAcc", "BaseMiss", "Base%",
                   "SupAcc", "SupMiss", "Sup%"});
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const ProfileResult &pb = profs[wi * 2];
            const ProfileResult &ps = profs[wi * 2 + 1];
            tt.row({workloads[wi]->name,
                    fmtCount(pb.tlbAccesses),
                    fmtCount(pb.tlbMisses),
                    fmtPct(ratio(pb.tlbMisses, pb.tlbAccesses), 3),
                    fmtCount(ps.tlbAccesses),
                    fmtCount(ps.tlbMisses),
                    fmtPct(ratio(ps.tlbMisses, ps.tlbAccesses), 3)});
        }
        emit(opt, "Section 5.4 detail: raw data-TLB probes and misses "
                  "(64-entry TLB, 4KB pages)",
             tt);
    }
    return 0;
}
