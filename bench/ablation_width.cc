/**
 * @file
 * Issue-width ablation — the paper's motivating trend: "The current
 * trend to increase processor issue widths further amplifies load
 * latencies because exploitation of instruction level parallelism
 * decreases the amount of work between load instructions"
 * (Section 1). This bench scales the machine from 2- to 8-wide
 * (functional units and cache ports scaled proportionally) and measures
 * the FAC speedup at each width: if the paper's argument holds, the
 * speedup grows with width.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

namespace
{

PipelineConfig
scaledConfig(unsigned width, bool fac_on)
{
    PipelineConfig c = fac_on ? facPipelineConfig() : baselineConfig();
    c.fetchWidth = width;
    c.issueWidth = width;
    c.fetchBufferSize = 4 * width;
    c.numIntAlus = width;
    c.numMemUnits = std::max(1u, width / 2);
    c.numFpAdders = std::max(1u, width / 2);
    c.maxLoadsPerCycle = std::max(1u, width / 2);
    c.maxStoresPerCycle = std::max(1u, width / 4);
    return c;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    const unsigned widths[] = {2, 4, 8};

    Table t;
    std::vector<std::string> hdr{"Benchmark"};
    for (unsigned w : widths) {
        hdr.push_back(strprintf("IPC@%u", w));
        hdr.push_back(strprintf("spd@%u", w));
    }
    t.header(hdr);

    std::vector<std::vector<double>> spd(std::size(widths));
    std::vector<double> weights;
    std::vector<bool> is_fp;

    // Per (workload, width): base then FAC timings.
    constexpr size_t num_widths = std::size(widths);
    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (unsigned width : widths) {
            for (bool fac_on : {false, true}) {
                TimingRequest req;
                req.workload = w->name;
                req.build = buildOptions(opt,
                                         CodeGenPolicy::withSupport());
                req.pipe = scaledConfig(width, fac_on);
                req.maxInsts = opt.maxInsts;
                reqs.push_back(req);
            }
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "width");

    for (size_t wli = 0; wli < workloads.size(); ++wli) {
        std::vector<std::string> row{workloads[wli]->name};
        for (size_t wi = 0; wi < num_widths; ++wi) {
            const PipeStats &base =
                results[(wli * num_widths + wi) * 2].stats;
            const PipeStats &fac =
                results[(wli * num_widths + wi) * 2 + 1].stats;
            double s = speedup(base.cycles, fac.cycles);
            spd[wi].push_back(s);
            if (wi == 0) {
                weights.push_back(static_cast<double>(base.cycles));
                is_fp.push_back(workloads[wli]->floatingPoint);
            }
            row.push_back(fmtF(base.ipc()));
            row.push_back(fmtF(s, 3));
        }
        t.row(row);
    }

    if (opt.workloadFilter.empty()) {
        t.separator();
        for (bool fp : {false, true}) {
            std::vector<std::string> cells{fp ? "FP-Avg" : "Int-Avg"};
            for (size_t wi = 0; wi < std::size(widths); ++wi) {
                cells.push_back("-");
                cells.push_back(
                    fmtF(groupAverage(spd[wi], weights, is_fp, fp), 3));
            }
            t.row(cells);
        }
    }

    emit(opt, "Ablation (Section 1 motivation): FAC speedup (HW+SW, "
              "32B blocks) vs machine issue width — wider issue leaves "
              "more exposed load latency for FAC to reclaim", t);
    return 0;
}
