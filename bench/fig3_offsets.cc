/**
 * @file
 * Figure 3 reproduction: cumulative load-offset size distributions for
 * global-, stack- and general-pointer accesses. The paper plots Gcc, Sc,
 * Doduc and Spice as representative; those are the default set here
 * (--workload=NAME selects any other).
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

namespace
{

std::string
bucketLabel(unsigned i)
{
    if (i == OffsetHistogram::moreBucket)
        return "More";
    if (i == OffsetHistogram::negBucket)
        return "Neg";
    return strprintf("%u", i);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    std::vector<const WorkloadInfo *> workloads;
    if (opt.workloadFilter.empty()) {
        for (const char *n : {"gcc", "sc", "doduc", "spice"})
            workloads.push_back(&workload(n));
    } else {
        workloads = selectedWorkloads(opt);
    }

    static const char *class_names[3] = {"Global", "Stack", "General"};

    std::vector<ProfileRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        ProfileRequest req;
        req.workload = w->name;
        req.build = buildOptions(opt, CodeGenPolicy::baseline());
        req.maxInsts = opt.maxInsts;
        reqs.push_back(req);
    }
    std::vector<ProfileResult> results = runAll(opt, reqs, "fig3");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const WorkloadInfo *w = workloads[wi];
        const ProfileResult &r = results[wi];

        Table t;
        t.header({"Offset bits", "Global cum%", "Stack cum%",
                  "General cum%", "", "General curve"});
        // Buckets 0..16, then "More", then "Neg" (cumulative reaches 1).
        for (unsigned b = 0; b < OffsetHistogram::numBuckets; ++b) {
            std::vector<std::string> row{bucketLabel(b)};
            for (int c = 0; c < 3; ++c) {
                const OffsetHistogram &h = r.offsets[c];
                row.push_back(h.total ? fmtPct(h.cumulative(b), 1) : "-");
            }
            // ASCII rendering of the general-pointer curve (the one the
            // paper's analysis leans on hardest).
            const OffsetHistogram &gh = r.offsets[2];
            unsigned bars = gh.total
                ? static_cast<unsigned>(gh.cumulative(b) * 30.0 + 0.5)
                : 0;
            row.push_back("|");
            row.push_back(std::string(bars, '#'));
            t.row(row);
        }
        emit(opt, strprintf("Figure 3 [%s]: cumulative load-offset "
                            "distribution by addressing class "
                            "(loads: %s global / %s stack / %s general)",
                            w->name,
                            fmtPct(r.fracGlobal, 1).c_str(),
                            fmtPct(r.fracStack, 1).c_str(),
                            fmtPct(r.fracGeneral, 1).c_str()),
             t);
        (void)class_names;
    }
    return 0;
}
