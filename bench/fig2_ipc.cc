/**
 * @file
 * Figure 2 reproduction: "Impact of Load Latency on IPC". For each of
 * the 19 benchmarks, the IPC on the baseline 4-way superscalar under
 * four memory idealisations: Baseline (2-cycle loads, 6-cycle miss),
 * 1-Cycle Loads, Perfect Cache, and 1-Cycle + Perfect, plus the
 * run-time-weighted Int-Avg and FP-Avg rows.
 *
 * The paper's shape to check: 1-cycle loads beat a perfect cache for
 * most integer codes, and integer codes gain more than FP codes.
 */

#include "bench_util.hh"

using namespace facsim;
using namespace facsim::bench;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    struct Row
    {
        const WorkloadInfo *w;
        double ipc[4];
        uint64_t baseCycles;
    };
    std::vector<Row> rows;

    const PipelineConfig configs[4] = {
        baselineConfig(), oneCycleLoadConfig(), perfectCacheConfig(),
        oneCyclePerfectConfig()};

    std::vector<const WorkloadInfo *> workloads = selectedWorkloads(opt);
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : workloads) {
        for (int c = 0; c < 4; ++c) {
            TimingRequest req;
            req.workload = w->name;
            req.build = buildOptions(opt, CodeGenPolicy::baseline());
            req.pipe = configs[c];
            req.maxInsts = opt.maxInsts;
            reqs.push_back(req);
        }
    }
    std::vector<TimingResult> results = runAll(opt, reqs, "fig2");

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        Row r{workloads[wi], {}, 0};
        for (int c = 0; c < 4; ++c) {
            const TimingResult &res = results[wi * 4 + c];
            r.ipc[c] = res.stats.ipc();
            if (c == 0)
                r.baseCycles = res.stats.cycles;
        }
        rows.push_back(r);
    }

    Table t;
    t.header({"Benchmark", "Baseline", "1-Cycle Loads", "Perfect Cache",
              "1-Cycle+Perfect"});
    auto addAvg = [&](bool fp, const char *label) {
        std::vector<double> weights;
        std::vector<bool> is_fp;
        for (const Row &r : rows) {
            weights.push_back(static_cast<double>(r.baseCycles));
            is_fp.push_back(r.w->floatingPoint);
        }
        std::vector<std::string> cells{label};
        for (int c = 0; c < 4; ++c) {
            std::vector<double> v;
            for (const Row &r : rows)
                v.push_back(r.ipc[c]);
            cells.push_back(fmtF(groupAverage(v, weights, is_fp, fp)));
        }
        t.row(cells);
    };

    bool did_int_avg = false;
    for (const Row &r : rows) {
        if (r.w->floatingPoint && !did_int_avg &&
            opt.workloadFilter.empty()) {
            addAvg(false, "Int-Avg");
            t.separator();
            did_int_avg = true;
        }
        t.row({r.w->name, fmtF(r.ipc[0]), fmtF(r.ipc[1]), fmtF(r.ipc[2]),
               fmtF(r.ipc[3])});
    }
    if (opt.workloadFilter.empty())
        addAvg(true, "FP-Avg");

    emit(opt, "Figure 2: IPC under load-latency idealisations "
              "(4-way in-order superscalar, 16k D-cache, 32B blocks)", t);
    return 0;
}
