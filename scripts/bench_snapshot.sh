#!/bin/sh
# Snapshot the emulator/pipeline throughput micro-benchmarks into
# BENCH_emulator.json at the repository root, so rate regressions are
# visible in review diffs.
#
#   bench_snapshot.sh [build-dir] [noprof-build-dir]
#                     (defaults: build, build-noprof)
#
# Runs BM_EmulatorStep / BM_EmulatorRate / BM_PipelineRate from
# bench/micro_sim and records the steady-state instruction rate of each
# (items_per_second = simulated insts per host second). Note: the
# min-time value is deliberately suffix-less — older google-benchmark
# releases reject the "0.3s" spelling.
#
# When a second build tree configured with -DFACSIM_PROF=OFF exists
# (cmake -B build-noprof -DFACSIM_PROF=OFF), BM_PipelineRate is also
# timed there and recorded as prof_off_insts_per_sec, so the host-phase
# profiler's overhead (budget: <= 2%) is visible in review diffs.
#
# Also cuts a small scratch live-point library and times a matched-pair
# farm sweep over it (facsim_cli mklib/farm), recording the farm's
# throughput in live-point jobs per host second.
#
# Also boots a scratch experiment-serving daemon (facsim_cli serve) and
# drives it with two identical fixed-seed loadgen passes — the first
# cold (every request executed), the second fully warm (every request a
# cache hit) — recording cold/warm QPS and latency percentiles in
# BENCH_serve.json.
set -eu

BUILD=${1:-build}
NOPROF=${2:-build-noprof}
BIN="$BUILD/bench/micro_sim"
NOPROF_BIN="$NOPROF/bench/micro_sim"
CLI="$BUILD/tools/facsim_cli"
OUT=BENCH_emulator.json
SERVE_OUT=BENCH_serve.json

if [ ! -x "$BIN" ]; then
    echo "bench_snapshot.sh: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
fi

RAW=$(mktemp)
RAW_NOPROF=$(mktemp)
SERVE_COLD=$(mktemp)
SERVE_WARM=$(mktemp)
trap 'rm -f "$RAW" "$RAW_NOPROF" "$SERVE_COLD" "$SERVE_WARM"' EXIT

"$BIN" --benchmark_filter='BM_EmulatorStep|BM_EmulatorRate|BM_PipelineRate' \
       --benchmark_min_time=0.3 \
       --benchmark_format=json > "$RAW"

# Profiler-off comparison point for the pipeline rate (the only one of
# the three benches with FACSIM_PROF_SCOPE sites on its path).
PROF_OFF_OK=""
if [ -x "$NOPROF_BIN" ]; then
    "$NOPROF_BIN" --benchmark_filter='BM_PipelineRate' \
                  --benchmark_min_time=0.3 \
                  --benchmark_format=json > "$RAW_NOPROF"
    PROF_OFF_OK=1
else
    echo "bench_snapshot.sh: $NOPROF_BIN not built" \
         "(cmake -B $NOPROF -DFACSIM_PROF=OFF && cmake --build $NOPROF);" \
         "skipping prof-off rate" >&2
fi

# Farm throughput: 10 espresso live-points, matched-pair FAC-vs-baseline
# sweep on one thread. The live-points/s figure comes from the farm's
# stderr host-accounting line (stdout is the deterministic report).
FARM_RATE=""
if [ -x "$CLI" ]; then
    LIB=$(mktemp)
    "$CLI" mklib @espresso --lib="$LIB" --sample-period=20000 \
           --max-insts=200000 > /dev/null 2>&1
    FARM_RATE=$("$CLI" farm "$LIB" --fac --compare --jobs=1 2>&1 \
                    >/dev/null |
                sed -n 's/.*(\([0-9.]*\) live-points\/s).*/\1/p')
    rm -f "$LIB"
else
    echo "bench_snapshot.sh: $CLI not built; skipping farm rate" >&2
fi

# Serving-path throughput: a scratch daemon answers one cold pass (all
# 30 unique requests executed) and one identical warm pass (all 30 from
# the cache). Fixed seed, fixed mix — the passes are comparable across
# commits.
SERVE_OK=""
if [ -x "$CLI" ]; then
    SOCK=$(mktemp -u)
    "$CLI" serve --socket="$SOCK" --jobs=2 > /dev/null 2>&1 &
    SRV=$!
    i=0
    while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    "$CLI" loadgen --socket="$SOCK" --requests=30 --repeat-pct=0 \
           --concurrency=2 --seed=11 --max-insts=60000 \
           --json="$SERVE_COLD" > /dev/null
    "$CLI" loadgen --socket="$SOCK" --requests=30 --repeat-pct=0 \
           --concurrency=2 --seed=11 --max-insts=60000 \
           --json="$SERVE_WARM" > /dev/null
    kill -TERM "$SRV"
    wait "$SRV"
    rm -f "$SOCK"
    SERVE_OK=1
else
    echo "bench_snapshot.sh: $CLI not built; skipping serve rate" >&2
fi

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
export GIT_REV OUT FARM_RATE SERVE_OUT SERVE_COLD SERVE_WARM SERVE_OK
export RAW_NOPROF PROF_OFF_OK

python3 - "$RAW" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    raw = json.load(f)

rates = {}
for b in raw.get("benchmarks", []):
    rate = b.get("items_per_second")
    if rate is not None:
        rates[b["name"]] = round(rate)

snapshot = {
    "schema_version": 4,
    "git_rev": os.environ["GIT_REV"],
    "insts_per_sec": rates,
}
farm_rate = os.environ.get("FARM_RATE", "")
if farm_rate:
    snapshot["farm_livepoints_per_sec"] = round(float(farm_rate))

prof_off = {}
if os.environ.get("PROF_OFF_OK"):
    with open(os.environ["RAW_NOPROF"]) as f:
        raw_off = json.load(f)
    for b in raw_off.get("benchmarks", []):
        rate = b.get("items_per_second")
        if rate is not None:
            prof_off[b["name"]] = round(rate)
if prof_off:
    snapshot["prof_off_insts_per_sec"] = prof_off

out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}:")
for name, rate in sorted(rates.items()):
    print(f"  {name:20s} {rate / 1e6:8.1f}M insts/s")
if farm_rate:
    print(f"  {'FarmRate':20s} {float(farm_rate):8.1f}  live-points/s")
for name, off in sorted(prof_off.items()):
    on = rates.get(name)
    if on:
        pct = 100.0 * (off - on) / off
        print(f"  {name + ' prof-off':20s} {off / 1e6:8.1f}M insts/s "
              f"(prof-on overhead {pct:+.1f}%)")

if os.environ.get("SERVE_OK"):
    with open(os.environ["SERVE_COLD"]) as f:
        cold = json.load(f)
    with open(os.environ["SERVE_WARM"]) as f:
        warm = json.load(f)
    assert cold["errors"] == 0 and warm["errors"] == 0, (cold, warm)
    # The warm pass replays the cold pass's bytes, so a digest change
    # here means the serving path itself is broken, not just slow.
    assert warm["response_digest"] == cold["response_digest"], \
        (cold["response_digest"], warm["response_digest"])
    serve = {
        "schema_version": 3,
        "git_rev": os.environ["GIT_REV"],
        "cold_qps": round(cold["qps"], 1),
        "warm_qps": round(warm["qps"], 1),
        "cold_p50_us": round(cold["p50_us"], 1),
        "cold_p99_us": round(cold["p99_us"], 1),
        "warm_p50_us": round(warm["p50_us"], 1),
        "warm_p99_us": round(warm["p99_us"], 1),
        "requests_per_pass": cold["sent"],
    }
    serve_out = os.environ["SERVE_OUT"]
    with open(serve_out, "w") as f:
        json.dump(serve, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {serve_out}:")
    print(f"  {'ColdQPS':20s} {serve['cold_qps']:10.1f} req/s "
          f"(p50 {serve['cold_p50_us']:.0f} us)")
    print(f"  {'WarmQPS':20s} {serve['warm_qps']:10.1f} req/s "
          f"(p50 {serve['warm_p50_us']:.1f} us)")
EOF
