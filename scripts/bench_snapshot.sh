#!/bin/sh
# Snapshot the emulator/pipeline throughput micro-benchmarks into
# BENCH_emulator.json at the repository root, so rate regressions are
# visible in review diffs.
#
#   bench_snapshot.sh [build-dir]    (default: build)
#
# Runs BM_EmulatorStep / BM_EmulatorRate / BM_PipelineRate from
# bench/micro_sim and records the steady-state instruction rate of each
# (items_per_second = simulated insts per host second). Note: the
# min-time value is deliberately suffix-less — older google-benchmark
# releases reject the "0.3s" spelling.
#
# Also cuts a small scratch live-point library and times a matched-pair
# farm sweep over it (facsim_cli mklib/farm), recording the farm's
# throughput in live-point jobs per host second.
set -eu

BUILD=${1:-build}
BIN="$BUILD/bench/micro_sim"
CLI="$BUILD/tools/facsim_cli"
OUT=BENCH_emulator.json

if [ ! -x "$BIN" ]; then
    echo "bench_snapshot.sh: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"$BIN" --benchmark_filter='BM_EmulatorStep|BM_EmulatorRate|BM_PipelineRate' \
       --benchmark_min_time=0.3 \
       --benchmark_format=json > "$RAW"

# Farm throughput: 10 espresso live-points, matched-pair FAC-vs-baseline
# sweep on one thread. The live-points/s figure comes from the farm's
# stderr host-accounting line (stdout is the deterministic report).
FARM_RATE=""
if [ -x "$CLI" ]; then
    LIB=$(mktemp)
    "$CLI" mklib @espresso --lib="$LIB" --sample-period=20000 \
           --max-insts=200000 > /dev/null 2>&1
    FARM_RATE=$("$CLI" farm "$LIB" --fac --compare --jobs=1 2>&1 \
                    >/dev/null |
                sed -n 's/.*(\([0-9.]*\) live-points\/s).*/\1/p')
    rm -f "$LIB"
else
    echo "bench_snapshot.sh: $CLI not built; skipping farm rate" >&2
fi

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
export GIT_REV OUT FARM_RATE

python3 - "$RAW" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    raw = json.load(f)

rates = {}
for b in raw.get("benchmarks", []):
    rate = b.get("items_per_second")
    if rate is not None:
        rates[b["name"]] = round(rate)

snapshot = {
    "schema_version": 2,
    "git_rev": os.environ["GIT_REV"],
    "insts_per_sec": rates,
}
farm_rate = os.environ.get("FARM_RATE", "")
if farm_rate:
    snapshot["farm_livepoints_per_sec"] = round(float(farm_rate))

out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}:")
for name, rate in sorted(rates.items()):
    print(f"  {name:20s} {rate / 1e6:8.1f}M insts/s")
if farm_rate:
    print(f"  {'FarmRate':20s} {float(farm_rate):8.1f}  live-points/s")
EOF
