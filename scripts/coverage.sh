#!/bin/sh
# Aggregate line coverage over src/ and enforce a floor.
#
#   coverage.sh <build-dir> <source-root> <floor-percent>
#
# Prefers gcovr when installed (CI installs it); otherwise falls back
# to raw gcov, merging per-line execution counts across translation
# units so headers included from many TUs are not double-counted.
set -eu

BUILD=$1
ROOT=$2
FLOOR=$3

if command -v gcovr >/dev/null 2>&1; then
    exec gcovr --root "$ROOT" --filter "$ROOT/src/" \
        --object-directory "$BUILD" \
        --print-summary --fail-under-line "$FLOOR"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Generate .gcov reports for every profiled object into TMP; -p keeps
# the full source path mangled into the report file name so distinct
# sources never collide.
find "$BUILD" -name '*.gcda' | while read -r gcda; do
    (cd "$TMP" && gcov -p -o "$(dirname "$gcda")" "$gcda" \
        >/dev/null 2>&1) || true
done

if ! ls "$TMP"/*.gcov >/dev/null 2>&1; then
    echo "coverage.sh: no .gcov reports produced — did the tests run?" >&2
    exit 1
fi

# Merge: a line is covered if any TU executed it. Only sources under
# $ROOT/src/ count toward the floor.
awk -v root="$ROOT/src/" -v floor="$FLOOR" '
    /:[ \t]*0:Source:/ {
        split($0, a, ":Source:")
        src = a[2]
        relevant = (index(src, root) == 1)
        next
    }
    !relevant { next }
    {
        split($0, a, ":")
        count = a[1]
        line = a[2] + 0
        gsub(/[ \t*]/, "", count)
        if (count == "-" || line == 0)
            next
        key = src SUBSEP line
        seen[key] = 1
        if (count !~ /[#=]/ && count + 0 > 0)
            hit[key] = 1
    }
    END {
        total = 0; covered = 0
        for (k in seen) {
            ++total
            if (k in hit)
                ++covered
        }
        if (total == 0) {
            print "coverage.sh: no executable lines found under " root
            exit 1
        }
        pct = 100.0 * covered / total
        printf "line coverage over src/: %.1f%% (%d of %d lines)\n",
            pct, covered, total
        if (pct < floor) {
            printf "FAIL: below the %d%% floor\n", floor
            exit 1
        }
        printf "OK: meets the %d%% floor\n", floor
    }
' "$TMP"/*.gcov
